#ifndef VIEWMAT_STORAGE_BPTREE_H_
#define VIEWMAT_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace viewmat::storage {

/// Clustered B+-tree over int64 keys with fixed-size opaque payloads.
/// Leaves store the full records (this is the clustered access method the
/// paper assumes for R, R1 and the materialized view V); internal nodes
/// store separator keys. Duplicate keys are supported — required because a
/// view's clustering field (the predicate field) is generally not unique.
///
/// Deletion uses the lazy policy also found in production systems
/// (PostgreSQL nbtree): entries are removed immediately, but non-empty
/// nodes are never rebalanced; a node is reclaimed only when it becomes
/// completely empty. Occupancy therefore stays >= 1 entry per node rather
/// than >= 50%, which is harmless for the steady-state workloads simulated
/// here and greatly simplifies the structure.
///
/// All node accesses go through the BufferPool, so every traversal charges
/// the shared CostTracker exactly the I/Os a cold/warm cache would incur.
class BPTree {
 public:
  /// Visit callback for scans: return false to stop the scan early.
  using Visitor = std::function<bool(int64_t key, const uint8_t* payload)>;
  /// Predicate identifying one record among duplicates of a key.
  using Matcher = std::function<bool(const uint8_t* payload)>;

  BPTree(BufferPool* pool, uint32_t payload_size);

  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;

  /// Inserts a (key, payload) entry. Duplicate keys are allowed; the new
  /// entry lands after existing entries with an equal key.
  Status Insert(int64_t key, const uint8_t* payload);

  /// Streaming producer for BulkLoad: fills *key and payload (payload_size
  /// bytes) and returns true, or returns false when exhausted. Keys must be
  /// non-decreasing.
  using BulkSource = std::function<bool(int64_t* key, uint8_t* payload)>;

  /// Builds the tree bottom-up from a sorted stream, packing leaves and
  /// internal nodes to `fill_factor` (1.0 = completely full, the packing
  /// the paper's index-height formula assumes). The tree must be empty.
  /// Far cheaper than N inserts: every page is written exactly once and no
  /// splits occur.
  Status BulkLoad(const BulkSource& source, double fill_factor = 1.0);

  /// Rebuilds the tree by scanning it and bulk-loading into fresh pages:
  /// reclaims empty leaves left by the lazy deletion policy and restores
  /// packing. The offline-reorg flavor of vacuum.
  Status Compact(double fill_factor = 1.0);

  /// Deletes the first entry with `key` whose payload satisfies `match`
  /// (pass nullptr to delete the first entry with the key). Returns
  /// NotFound when no entry matches.
  Status Delete(int64_t key, const Matcher& match);

  /// Copies the payload of the first matching entry into `out`. Returns
  /// NotFound when absent.
  Status Find(int64_t key, uint8_t* out) const;

  /// Overwrites the payload of the first entry with `key` satisfying
  /// `match`. The key itself must not change (delete + insert for that).
  Status UpdatePayload(int64_t key, const Matcher& match,
                       const uint8_t* new_payload);

  /// Visits all entries with key in [lo, hi], in key order.
  Status RangeScan(int64_t lo, int64_t hi, const Visitor& visit) const;

  /// Visits every entry in key order.
  Status ScanAll(const Visitor& visit) const;

  /// Number of levels including the leaf level (a lone leaf has height 1).
  /// This is 1 + the H_vi the cost model uses for descent charging.
  uint32_t Height() const { return height_; }

  size_t entry_count() const { return entry_count_; }
  size_t leaf_page_count() const { return leaf_page_count_; }

  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t internal_capacity() const { return internal_capacity_; }

  /// Verifies every structural invariant (sorted keys, consistent
  /// separators, uniform leaf depth, intact leaf chain, capacity bounds).
  /// O(size); for tests.
  Status CheckInvariants() const;

 private:
  // --- Node layout -------------------------------------------------------
  // Common header: [u8 is_leaf][u8 pad][u16 count]
  // Leaf:     [hdr][PageId next][PageId prev][count * (i64 key, payload)]
  // Internal: [hdr][PageId child0][count * (i64 sep, PageId child)]
  static constexpr uint32_t kIsLeafOff = 0;
  static constexpr uint32_t kCountOff = 2;
  static constexpr uint32_t kLeafNextOff = 4;
  static constexpr uint32_t kLeafPrevOff = 8;
  static constexpr uint32_t kLeafEntriesOff = 12;
  static constexpr uint32_t kChild0Off = 4;
  static constexpr uint32_t kInternalEntriesOff = 8;

  uint32_t LeafEntrySize() const { return 8 + payload_size_; }
  static constexpr uint32_t kInternalEntrySize = 12;

  uint32_t LeafKeyOff(uint16_t i) const {
    return kLeafEntriesOff + i * LeafEntrySize();
  }
  uint32_t LeafPayloadOff(uint16_t i) const { return LeafKeyOff(i) + 8; }
  static uint32_t InternalSepOff(uint16_t i) {
    return kInternalEntriesOff + i * kInternalEntrySize;
  }
  static uint32_t InternalChildOff(uint16_t i) {
    return InternalSepOff(i) + 8;
  }

  static bool IsLeaf(const Page& pg) { return pg.ReadAt<uint8_t>(kIsLeafOff); }
  static uint16_t Count(const Page& pg) { return pg.ReadAt<uint16_t>(kCountOff); }
  static void SetCount(Page* pg, uint16_t c) { pg->WriteAt(kCountOff, c); }

  /// Descends to the leaf that may contain the *leftmost* occurrence of
  /// `key`, recording the path (page ids and chosen child indices).
  struct PathEntry {
    PageId page;
    uint16_t child_index;  // which child pointer was followed (internal only)
  };
  StatusOr<PageId> DescendToLeaf(int64_t key,
                                 std::vector<PathEntry>* path) const;

  /// Position of the first entry with key >= `key` in a leaf.
  uint16_t LeafLowerBound(const Page& pg, int64_t key) const;
  /// Position after the last entry with key <= `key` in a leaf.
  uint16_t LeafUpperBound(const Page& pg, int64_t key) const;
  /// Child index to follow inside an internal node for the leftmost
  /// occurrence of `key`.
  static uint16_t InternalChildFor(const Page& pg, int64_t key);

  void LeafInsertAt(Page* pg, uint16_t pos, int64_t key,
                    const uint8_t* payload);
  void LeafRemoveAt(Page* pg, uint16_t pos);
  static void InternalInsertAt(Page* pg, uint16_t pos, int64_t sep,
                               PageId child);
  static void InternalRemoveAt(Page* pg, uint16_t pos);

  /// Splits the given full leaf, returning the new right sibling and its
  /// first key (the separator to push up).
  struct SplitResult {
    PageId right;
    int64_t separator;
  };
  StatusOr<SplitResult> SplitLeaf(PageGuard* left);
  StatusOr<SplitResult> SplitInternal(PageGuard* left);

  /// Inserts (sep, right) into the parents along `path`, splitting upward
  /// as needed; grows a new root when the old root splits.
  Status InsertIntoParents(std::vector<PathEntry>* path, int64_t sep,
                           PageId right);

  /// Unlinks a now-empty leaf/internal chain bottom-up after a delete.
  Status ReclaimEmpty(std::vector<PathEntry>* path, PageId empty_child);

  Status CheckNode(PageId id, uint32_t depth, std::optional<int64_t> lo,
                   std::optional<int64_t> hi, uint32_t* leaf_depth,
                   size_t* entries, size_t* leaves) const;

  BufferPool* pool_;
  uint32_t payload_size_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
  PageId root_;
  uint32_t height_ = 1;
  size_t entry_count_ = 0;
  size_t leaf_page_count_ = 1;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_BPTREE_H_
