#include "storage/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace viewmat::storage {

BloomFilter::BloomFilter(size_t bits, int hashes)
    : bits_(std::max<size_t>(bits, 64)),
      hashes_(std::clamp(hashes, 1, 16)),
      words_((bits_ + 63) / 64, 0) {}

BloomFilter BloomFilter::ForExpectedKeys(size_t expected_keys,
                                         double fp_rate) {
  VIEWMAT_CHECK(fp_rate > 0.0 && fp_rate < 1.0);
  const double n = static_cast<double>(std::max<size_t>(expected_keys, 1));
  const double ln2 = std::log(2.0);
  const double m_ideal = -n * std::log(fp_rate) / (ln2 * ln2);
  // The constructor clamps the table to at least 64 bits; the hash count
  // must be chosen for the table actually built, not the ideal one, or
  // tiny filters end up with far too few hashes and miss the requested
  // false-positive rate (k = m/n * ln2 is only optimal for the real m).
  const size_t bits =
      std::max<size_t>(static_cast<size_t>(std::ceil(m_ideal)), 64);
  const double m = static_cast<double>(bits);
  const int k = std::max(1, static_cast<int>(std::lround(m / n * ln2)));
  return BloomFilter(bits, k);
}

uint64_t BloomFilter::Mix(uint64_t x, uint64_t salt) {
  // SplitMix64 finalizer with a salt; good avalanche on sequential keys.
  uint64_t z = x + salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix(key, 0x8badf00d);
  const uint64_t h2 = Mix(key, 0xdeadbeef) | 1;  // odd stride
  for (int i = 0; i < hashes_; ++i) {
    const size_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++keys_added_;
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix(key, 0x8badf00d);
  const uint64_t h2 = Mix(key, 0xdeadbeef) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const size_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  keys_added_ = 0;
}

double BloomFilter::ExpectedFpRate() const {
  const double k = hashes_;
  const double n = static_cast<double>(keys_added_);
  const double m = static_cast<double>(bits_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace viewmat::storage
