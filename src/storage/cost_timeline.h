#ifndef VIEWMAT_STORAGE_COST_TIMELINE_H_
#define VIEWMAT_STORAGE_COST_TIMELINE_H_

#include <cstdint>
#include <vector>

#include "obs/timeseries.h"
#include "storage/cost_tracker.h"

namespace viewmat::storage {

/// Time-series view of a strategy run: the attributed cost matrix bucketed
/// into fixed windows of model milliseconds, so a run answers
/// cost(component, phase, t) instead of only cost(component, phase).
///
/// Windowing follows obs/timeseries.h: window k covers the half-open
/// interval [k*W, (k+1)*W) of the virtual clock. An operation is charged
/// entirely to the window containing its *start* time — ops are atomic
/// units of model time, and splitting one across windows would break the
/// sum-of-windows == flat-counters invariant the schema checker verifies.
/// Charges made outside any op (setup, final flushes) are swept into the
/// window of the last preceding op by TimelineRecorder::Finish() for the
/// same reason.

/// One non-empty (component, phase) cell of a window.
struct TimelineCell {
  Component component = Component::kUnattributed;
  Phase phase = Phase::kUnphased;
  CostCounters counters;
};

/// Drift signals stamped when a window closes. These are what an adaptive
/// advisor would watch: update_fraction tracks the P axis, the per-op cost
/// gauges and quantiles surface refresh amplification and query latency
/// shifts long before the run-level averages move.
struct TimelineSignals {
  /// updates / (updates + queries) in this window — the observed P.
  double update_fraction = 0;
  /// Model ms charged in this window to the update path (phases
  /// update_apply + screen), to refresh work (refresh + refresh_recovery),
  /// and to query serving (query). Unphased charges are in none of them.
  double update_ms = 0;
  double refresh_ms = 0;
  double query_ms = 0;
  /// refresh_ms / updates: refresh amplification per update transaction.
  double refresh_ms_per_update = 0;
  /// query_ms / queries: the windowed analogue of ms-per-query.
  double query_ms_per_query = 0;
  /// Disk I/Os per operation in this window.
  double io_per_op = 0;
  /// EWMA (half-life = one window) of whole-op cost, split by op kind.
  double ewma_update_ms = 0;
  double ewma_query_ms = 0;
  /// Per-op cost quantiles over the trailing 4 windows.
  double p50_op_ms = 0;
  double p95_op_ms = 0;
};

struct TimelineWindow {
  int64_t index = 0;  ///< window k covers [k*window_ms, (k+1)*window_ms)
  uint64_t updates = 0;
  uint64_t queries = 0;
  CostCounters totals;              ///< sum of cells
  std::vector<TimelineCell> cells;  ///< non-empty cells, (component, phase)
                                    ///< index order
  TimelineSignals signals;
};

struct CostTimeline {
  double window_ms = 0;  ///< 0 = timeline recording was off
  /// Ascending by index; sparse (windows with no ops and no charges are
  /// simply absent).
  std::vector<TimelineWindow> windows;

  bool empty() const { return windows.empty(); }
  /// Sum of every window's totals — must equal the run's flat counters.
  CostCounters Total() const {
    CostCounters total;
    for (const TimelineWindow& w : windows) total += w.totals;
    return total;
  }
};

/// Accumulates a CostTimeline while a strategy driver runs ops. Usage:
///
///   TimelineRecorder rec(&tracker, /*window_ms=*/5000);
///   for each op: { begin = tracker.TotalMs(); run op;
///                  rec.OnOp(is_update, begin); }
///   run.timeline = rec.Finish();   // also sweeps trailing charges
///
/// The recorder snapshots the tracker's attributed matrix and charges each
/// OnOp the delta since the previous snapshot, so it needs no hooks inside
/// the storage layer. Single-threaded like the tracker it reads; all state
/// is driven by the virtual clock, so timelines are byte-identical at any
/// sweep parallelism.
class TimelineRecorder {
 public:
  /// `tracker` must outlive the recorder. `window_ms` > 0.
  TimelineRecorder(CostTracker* tracker, double window_ms);

  /// Records the op that just finished; `begin_ms` is the virtual clock
  /// read *before* the op ran. Must be called in op order.
  void OnOp(bool is_update, double begin_ms);

  /// Sweeps charges made since the last op into the final window, stamps
  /// its signals, and returns the finished timeline. Call exactly once.
  CostTimeline Finish();

 private:
  void OpenWindow(int64_t index);
  void CloseWindow();
  /// Delta of the tracker's attributed matrix since the last snapshot,
  /// accumulated into the open window.
  void AbsorbDelta();

  CostTracker* tracker_;
  const double window_ms_;
  CostTimeline timeline_;
  AttributedCounters last_snapshot_;
  bool open_ = false;
  TimelineWindow window_;
  AttributedCounters window_attr_;
  double last_op_begin_ms_ = 0;
  obs::EwmaGauge ewma_update_;
  obs::EwmaGauge ewma_query_;
  obs::SlidingWindowHistogram op_hist_;
  bool finished_ = false;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_COST_TIMELINE_H_
