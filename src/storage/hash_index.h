#ifndef VIEWMAT_STORAGE_HASH_INDEX_H_
#define VIEWMAT_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace viewmat::storage {

/// Clustered static-hashing access method over int64 keys with fixed-size
/// payloads: records live directly in the bucket pages (the paper's R2 and
/// the AD differential file both use clustered hashing on a key field).
/// Collisions beyond a page's capacity spill into an overflow chain; empty
/// overflow pages are unlinked and freed on delete.
///
/// The bucket directory lives in memory (equivalent to a hash function and
/// an extent map); consulting it is not charged, matching the paper's
/// assumption that hashing locates the bucket page in one I/O.
class HashIndex {
 public:
  using Visitor = std::function<bool(int64_t key, const uint8_t* payload)>;
  using Matcher = std::function<bool(const uint8_t* payload)>;

  /// Buckets are allocated lazily: a bucket's primary page is created on
  /// first insert, so an empty index occupies no disk pages.
  HashIndex(BufferPool* pool, uint32_t payload_size, uint32_t bucket_count);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  Status Insert(int64_t key, const uint8_t* payload);

  /// Copies the payload of the first entry with `key` into `out`.
  Status Find(int64_t key, uint8_t* out) const;

  /// Visits every entry with `key` (duplicates allowed).
  Status FindAll(int64_t key, const Visitor& visit) const;

  /// Deletes the first entry with `key` accepted by `match` (nullptr = any).
  Status Delete(int64_t key, const Matcher& match);

  /// Overwrites the payload of the first matching entry.
  Status UpdatePayload(int64_t key, const Matcher& match,
                       const uint8_t* new_payload);

  /// Visits every entry in bucket order.
  Status ScanAll(const Visitor& visit) const;

  /// Frees every page and clears the index.
  Status Clear();

  size_t entry_count() const { return entry_count_; }
  uint32_t bucket_count() const {
    return static_cast<uint32_t>(buckets_.size());
  }
  size_t page_count() const { return page_count_; }
  uint32_t page_capacity() const { return page_capacity_; }

 private:
  // Bucket page layout: [u16 count][u16 pad][PageId overflow][entries...]
  static constexpr uint32_t kCountOff = 0;
  static constexpr uint32_t kOverflowOff = 4;
  static constexpr uint32_t kEntriesOff = 8;

  uint32_t EntrySize() const { return 8 + payload_size_; }
  uint32_t KeyOff(uint16_t i) const { return kEntriesOff + i * EntrySize(); }
  uint32_t PayloadOff(uint16_t i) const { return KeyOff(i) + 8; }

  uint32_t BucketFor(int64_t key) const;
  StatusOr<PageId> EnsurePrimary(uint32_t bucket);

  BufferPool* pool_;
  uint32_t payload_size_;
  uint32_t page_capacity_;
  std::vector<PageId> buckets_;  ///< primary page per bucket, lazily created
  /// Every page this index has allocated and not yet freed. Clear() frees
  /// exactly this list instead of walking the on-disk overflow chains: after
  /// a crash a bucket page's durable link field may never have been written
  /// (the initializing write can die in the buffer pool), and a stale link
  /// would walk into — and free — pages owned by other structures.
  std::vector<PageId> owned_pages_;
  size_t entry_count_ = 0;
  size_t page_count_ = 0;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_HASH_INDEX_H_
