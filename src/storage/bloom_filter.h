#ifndef VIEWMAT_STORAGE_BLOOM_FILTER_H_
#define VIEWMAT_STORAGE_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace viewmat::storage {

/// Bloom filter [Bloo70] keyed by 64-bit record keys, as used by the
/// Severance-Lohman differential-file screen (§2.2.2): before touching the
/// AD file, the filter is consulted; a zero answer proves the key is absent
/// and saves the I/O. False positives ("false drops") only cost an extra
/// read — correctness never depends on them.
///
/// Uses double hashing (Kirsch-Mitzenmacher): h_i(x) = h1(x) + i*h2(x),
/// which preserves the asymptotic false-positive rate of k independent
/// hashes.
class BloomFilter {
 public:
  /// `bits` is the paper's m; `hashes` is the number of probes per key.
  BloomFilter(size_t bits, int hashes);

  /// Sizes a filter for `expected_keys` with the given target false-positive
  /// rate: m = -n*ln(p)/ln(2)^2, k = (m/n)*ln(2).
  static BloomFilter ForExpectedKeys(size_t expected_keys, double fp_rate);

  void Add(uint64_t key);

  /// False means definitely absent; true means possibly present.
  bool MayContain(uint64_t key) const;

  void Clear();

  size_t bits() const { return bits_; }
  int hashes() const { return hashes_; }
  size_t keys_added() const { return keys_added_; }

  /// The analytical false-positive probability (1 - e^{-kn/m})^k for the
  /// current load, used by bench_ablation_bloom and the property tests.
  double ExpectedFpRate() const;

 private:
  static uint64_t Mix(uint64_t x, uint64_t salt);

  size_t bits_;
  int hashes_;
  size_t keys_added_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_BLOOM_FILTER_H_
