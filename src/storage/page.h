#ifndef VIEWMAT_STORAGE_PAGE_H_
#define VIEWMAT_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace viewmat::storage {

/// Identifier of a disk block. Page 0 is valid; kInvalidPageId marks "no
/// page" (end of chains, absent children).
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Log sequence number. 0 = "never logged"; real LSNs start at 1. Assigned
/// by LsnAllocator (storage/wal.h) and stamped onto pages so the buffer
/// pool can enforce the WAL rule: a dirty page never reaches the device
/// before the log records that made it dirty.
using Lsn = uint64_t;

/// A fixed-size block of raw bytes with bounds-checked typed accessors.
/// All on-disk structures (heap files, B+-tree nodes, hash buckets) are
/// serialized into Page contents, so an I/O is always a whole-block
/// transfer, matching the unit the cost model charges C2 for.
class Page {
 public:
  explicit Page(uint32_t size) : bytes_(size, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }

  /// Reads a trivially-copyable value at byte offset `off`.
  template <typename T>
  T ReadAt(uint32_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    VIEWMAT_DCHECK(off + sizeof(T) <= bytes_.size());
    T v;
    std::memcpy(&v, bytes_.data() + off, sizeof(T));
    return v;
  }

  /// Writes a trivially-copyable value at byte offset `off`.
  template <typename T>
  void WriteAt(uint32_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    VIEWMAT_DCHECK(off + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + off, &v, sizeof(T));
  }

  /// Copies `len` raw bytes out of the page starting at `off`.
  void ReadBytes(uint32_t off, uint8_t* out, uint32_t len) const {
    VIEWMAT_DCHECK(off + len <= bytes_.size());
    std::memcpy(out, bytes_.data() + off, len);
  }

  /// Copies `len` raw bytes into the page starting at `off`.
  void WriteBytes(uint32_t off, const uint8_t* in, uint32_t len) {
    VIEWMAT_DCHECK(off + len <= bytes_.size());
    std::memcpy(bytes_.data() + off, in, len);
  }

  void Zero() { std::fill(bytes_.begin(), bytes_.end(), 0); }

  /// LSN of the newest log record whose effect this page image carries.
  /// Metadata alongside the bytes (the simulated device persists it with
  /// the block); Zero() deliberately leaves it, since clearing content does
  /// not un-happen the logged mutation.
  Lsn lsn() const { return lsn_; }
  void set_lsn(Lsn lsn) { lsn_ = lsn; }

 private:
  std::vector<uint8_t> bytes_;
  Lsn lsn_ = 0;
};

/// Record identifier: a slot within a page.
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  friend bool operator==(const Rid&, const Rid&) = default;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_PAGE_H_
