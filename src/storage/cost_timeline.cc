#include "storage/cost_timeline.h"

#include <cmath>

#include "common/logging.h"

namespace viewmat::storage {

namespace {

/// Same latency ladder as the sim_update_ms/sim_query_ms registry
/// histograms, so windowed quantiles and run-level histograms are
/// comparable bucket for bucket.
std::vector<double> OpCostBounds() {
  return {30, 60, 120, 300, 600, 1200, 3000, 15000, 60000};
}

}  // namespace

TimelineRecorder::TimelineRecorder(CostTracker* tracker, double window_ms)
    : tracker_(tracker),
      window_ms_(window_ms),
      ewma_update_(/*half_life_ms=*/window_ms),
      ewma_query_(/*half_life_ms=*/window_ms),
      op_hist_(OpCostBounds(), window_ms, /*window_count=*/4) {
  VIEWMAT_CHECK(tracker != nullptr);
  VIEWMAT_CHECK(window_ms > 0);
  timeline_.window_ms = window_ms;
  last_snapshot_ = tracker_->attributed();
  last_op_begin_ms_ = tracker_->TotalMs();
}

void TimelineRecorder::OpenWindow(int64_t index) {
  window_ = TimelineWindow();
  window_.index = index;
  window_attr_ = AttributedCounters();
  open_ = true;
}

void TimelineRecorder::AbsorbDelta() {
  const AttributedCounters now = tracker_->attributed();
  const AttributedCounters delta = now - last_snapshot_;
  last_snapshot_ = now;
  window_attr_ += delta;
  window_.totals += delta.Total();
}

void TimelineRecorder::CloseWindow() {
  if (!open_) return;
  for (size_t c = 0; c < kNumComponents; ++c) {
    for (size_t p = 0; p < kNumPhases; ++p) {
      const CostCounters& cell = window_attr_.cells[c][p];
      if (cell.empty()) continue;
      window_.cells.push_back({static_cast<Component>(c),
                               static_cast<Phase>(p), cell});
    }
  }

  TimelineSignals& s = window_.signals;
  const uint64_t ops = window_.updates + window_.queries;
  s.update_fraction =
      ops > 0 ? static_cast<double>(window_.updates) / static_cast<double>(ops)
              : 0.0;
  CostCounters update_side = window_attr_.PhaseTotal(Phase::kUpdateApply);
  update_side += window_attr_.PhaseTotal(Phase::kScreen);
  CostCounters refresh_side = window_attr_.PhaseTotal(Phase::kRefresh);
  refresh_side += window_attr_.PhaseTotal(Phase::kRefreshRecovery);
  s.update_ms = tracker_->Ms(update_side);
  s.refresh_ms = tracker_->Ms(refresh_side);
  s.query_ms = tracker_->Ms(window_attr_.PhaseTotal(Phase::kQuery));
  s.refresh_ms_per_update =
      window_.updates > 0
          ? s.refresh_ms / static_cast<double>(window_.updates)
          : 0.0;
  s.query_ms_per_query =
      window_.queries > 0 ? s.query_ms / static_cast<double>(window_.queries)
                          : 0.0;
  s.io_per_op = ops > 0 ? static_cast<double>(window_.totals.disk_ios()) /
                              static_cast<double>(ops)
                        : 0.0;
  s.ewma_update_ms = ewma_update_.value();
  s.ewma_query_ms = ewma_query_.value();
  s.p50_op_ms = op_hist_.Quantile(last_op_begin_ms_, 0.5);
  s.p95_op_ms = op_hist_.Quantile(last_op_begin_ms_, 0.95);

  timeline_.windows.push_back(std::move(window_));
  open_ = false;
}

void TimelineRecorder::OnOp(bool is_update, double begin_ms) {
  VIEWMAT_DCHECK(!finished_);
  const int64_t w = static_cast<int64_t>(std::floor(begin_ms / window_ms_));
  if (open_ && window_.index != w) CloseWindow();
  if (!open_) OpenWindow(w);

  // The snapshot distance is exactly this op's charges: OnOp is called once
  // per op, right after it runs.
  const AttributedCounters now = tracker_->attributed();
  const AttributedCounters delta = now - last_snapshot_;
  last_snapshot_ = now;
  const double op_ms = tracker_->Ms(delta.Total());
  window_attr_ += delta;
  window_.totals += delta.Total();

  if (is_update) {
    ++window_.updates;
    ewma_update_.Observe(begin_ms, op_ms);
  } else {
    ++window_.queries;
    ewma_query_.Observe(begin_ms, op_ms);
  }
  op_hist_.Observe(begin_ms, op_ms);
  last_op_begin_ms_ = begin_ms;
}

CostTimeline TimelineRecorder::Finish() {
  VIEWMAT_DCHECK(!finished_);
  finished_ = true;
  // Trailing charges (final flushes, teardown) belong to no op; sweep them
  // into the last open window so the timeline still sums to the run totals.
  const AttributedCounters now = tracker_->attributed();
  const AttributedCounters residual = now - last_snapshot_;
  if (!residual.Total().empty()) {
    if (!open_) {
      // No op ever ran (or the last window already closed): attribute the
      // residual to the window of the last op start / construction time.
      OpenWindow(
          static_cast<int64_t>(std::floor(last_op_begin_ms_ / window_ms_)));
    }
    AbsorbDelta();
  }
  CloseWindow();
  return std::move(timeline_);
}

}  // namespace viewmat::storage
