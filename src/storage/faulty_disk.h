#ifndef VIEWMAT_STORAGE_FAULTY_DISK_H_
#define VIEWMAT_STORAGE_FAULTY_DISK_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "storage/disk.h"

namespace viewmat::storage {

/// Fault-injecting decorator over any DiskInterface. It is the failure
/// model of the crash-safety work: the layers above see the exact same
/// interface, so faults exercise the production error paths, never
/// test-only ones.
///
/// Three failure classes, all deterministic under a seed:
///
///  - Transient faults: each read (write) independently fails with
///    probability read_fault_rate (write_fault_rate), returning Internal
///    and applying nothing. One-shot scheduled faults (InjectReadFault /
///    InjectWriteFault) are kept for targeted tests.
///  - Torn writes: when enabled, a failing write first applies a random
///    prefix of the page — the classic partially-persisted block. Only the
///    checksummed AD log is torn-write safe; other structures must be
///    protected by ordering (write fully or not at all), so tests enable
///    tearing selectively.
///  - Scripted crashes: ScriptCrash(p) arms a protocol point; when a layer
///    announces it via AtCrashPoint(p), the disk enters the crashed state
///    and every subsequent operation fails until Restart() — a hard stop at
///    exactly that instant of the refresh/WAL protocol.
///
/// A fault budget (set_max_faults) bounds total injected failures so
/// torture runs provably converge once the budget is spent.
class FaultyDisk : public DiskInterface {
 public:
  explicit FaultyDisk(DiskInterface* inner, uint64_t seed = 0);

  FaultyDisk(const FaultyDisk&) = delete;
  FaultyDisk& operator=(const FaultyDisk&) = delete;

  // --- DiskInterface ------------------------------------------------------
  uint32_t page_size() const override { return inner_->page_size(); }
  PageId Allocate() override { return inner_->Allocate(); }
  Status Free(PageId id) override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& in) override;
  size_t live_pages() const override { return inner_->live_pages(); }
  CostTracker* tracker() override { return inner_->tracker(); }
  Status AtCrashPoint(CrashPoint p) override;

  // --- Probabilistic faults ----------------------------------------------
  void set_read_fault_rate(double p) { read_fault_rate_ = p; }
  void set_write_fault_rate(double p) { write_fault_rate_ = p; }
  /// Failing writes tear the page (apply a random prefix) instead of
  /// applying nothing.
  void set_torn_writes(bool on) { torn_writes_ = on; }
  /// Stops injecting after `n` total faults (crashes included). 0 = none.
  void set_max_faults(uint64_t n) { max_faults_ = n; }

  /// One-shot scheduled faults: after `after` more successful reads
  /// (writes), the next read (write) fails once, then the trigger clears.
  void InjectReadFault(uint64_t after) { read_fault_in_ = after + 1; }
  void InjectWriteFault(uint64_t after) { write_fault_in_ = after + 1; }

  /// Disarms every programmed failure (rates, one-shots, crash script).
  /// Does not clear an already-crashed state — use Restart() for that.
  void ClearFaults();

  // --- Scripted crashes ---------------------------------------------------
  /// Crash the `occurrence`-th time `point` is announced (1 = next time).
  void ScriptCrash(CrashPoint point, uint64_t occurrence = 1);

  /// Crash on the `nth` disk operation from now (1 = the very next one).
  /// Reads, writes, and frees all count; the chosen operation fails with
  /// the crash status, applies nothing, and the disk stays crashed until
  /// Restart(). Unlike the protocol-point script this needs no
  /// announcements from upper layers, so a sweep over nth = 1..op_count()
  /// of a healthy run crashes the system at *every* disk operation — the
  /// exhaustive schedule the crash-equivalence oracle drives.
  void ScriptCrashAtOp(uint64_t nth);

  /// True once a crash fired; all I/O fails until Restart().
  bool crashed() const { return crashed_; }
  CrashPoint crash_point() const { return crashed_at_; }

  /// Clears the crashed state, modelling a restart. The scripted point
  /// stays consumed; recovery code runs against a healthy device unless new
  /// faults are armed.
  void Restart();

  // --- Stats --------------------------------------------------------------
  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t crashes() const { return crashes_; }
  /// Disk operations (reads, writes, frees) attempted so far, including
  /// ones that failed. The coordinate system ScriptCrashAtOp counts in.
  uint64_t op_count() const { return op_count_; }

 private:
  bool BudgetAllows() const {
    return max_faults_ == 0 || faults_injected_ < max_faults_;
  }
  Status CrashedStatus() const;
  /// Counts one disk operation; returns the crash status when the disk is
  /// (or just became) crashed.
  Status OpTick();

  DiskInterface* inner_;
  Random rng_;

  double read_fault_rate_ = 0.0;
  double write_fault_rate_ = 0.0;
  bool torn_writes_ = false;
  uint64_t max_faults_ = 0;
  uint64_t read_fault_in_ = 0;   ///< 0 = no one-shot armed
  uint64_t write_fault_in_ = 0;

  CrashPoint scripted_point_ = CrashPoint::kNone;
  uint64_t scripted_occurrence_ = 0;
  uint64_t op_count_ = 0;
  uint64_t crash_at_op_ = 0;  ///< absolute op number; 0 = not armed
  bool crashed_ = false;
  CrashPoint crashed_at_ = CrashPoint::kNone;

  uint64_t faults_injected_ = 0;
  uint64_t crashes_ = 0;
};

}  // namespace viewmat::storage

#endif  // VIEWMAT_STORAGE_FAULTY_DISK_H_
