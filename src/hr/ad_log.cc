#include "hr/ad_log.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace viewmat::hr {

using storage::kInvalidPageId;
using storage::Page;
using storage::PageId;

AdLog::AdLog(storage::DiskInterface* disk)
    : disk_(disk), tail_(disk->page_size()) {
  VIEWMAT_CHECK(disk_ != nullptr);
  VIEWMAT_CHECK(disk_->page_size() >= kHeaderSize + kRecordHeader + 16);
  const PageId head = disk_->Allocate();
  InitHeader(&tail_);
  VIEWMAT_CHECK_MSG(disk_->Write(head, tail_).ok(),
                    "AD log head page unwritable at construction");
  chain_.push_back(head);
}

AdLog::~AdLog() {
  for (const PageId id : chain_) (void)disk_->Free(id);
}

void AdLog::InitHeader(Page* page) const {
  page->Zero();
  page->WriteAt<uint32_t>(kUsedOff, kHeaderSize);
  page->WriteAt<PageId>(kNextOff, kInvalidPageId);
}

uint16_t AdLog::max_payload() const {
  return static_cast<uint16_t>(disk_->page_size() - kHeaderSize -
                               kRecordHeader);
}

uint32_t AdLog::Checksum(uint8_t type, const uint8_t* payload, uint16_t len) {
  uint32_t h = 2166136261u;  // FNV-1a
  const auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(type);
  mix(static_cast<uint8_t>(len & 0xff));
  mix(static_cast<uint8_t>(len >> 8));
  for (uint16_t i = 0; i < len; ++i) mix(payload[i]);
  return h;
}

void AdLog::PutRecord(Page* page, uint32_t off, uint8_t type,
                      const uint8_t* payload, uint16_t len) const {
  page->WriteAt<uint8_t>(off, type);
  page->WriteAt<uint16_t>(off + 1, len);
  page->WriteAt<uint32_t>(off + 3, Checksum(type, payload, len));
  if (len > 0) page->WriteBytes(off + kRecordHeader, payload, len);
}

void AdLog::DurableEnd(const Page& page, uint32_t* end, size_t* count) const {
  const uint32_t page_size = disk_->page_size();
  uint32_t off = kHeaderSize;
  *count = 0;
  while (off + kRecordHeader <= page_size) {
    const uint8_t type = page.ReadAt<uint8_t>(off);
    const uint16_t len = page.ReadAt<uint16_t>(off + 1);
    const uint32_t sum = page.ReadAt<uint32_t>(off + 3);
    if (off + kRecordHeader + len > page_size ||
        sum != Checksum(type, page.data() + off + kRecordHeader, len)) {
      break;
    }
    off += kRecordHeader + len;
    ++*count;
  }
  *end = off;
}

Status AdLog::ResyncTail() {
  const storage::ScopedComponent tag(disk_->tracker(),
                                     storage::Component::kAdLog);
  // Walk the durable chain from the head — not from the in-memory tail,
  // which may be stale in either direction (a link write that landed
  // despite an error extends the chain; a truncate that landed despite an
  // error empties it). A garbage (torn) link is recognized by pointing
  // nowhere useful: an unreadable id, a page with no valid records, or a
  // page already walked (never follow a cycle).
  const uint32_t page_size = disk_->page_size();
  std::vector<PageId> durable_chain;
  Page page(page_size);
  Page tail_image(page_size);
  size_t durable_records = 0;
  PageId id = chain_.front();
  while (true) {
    if (std::find(durable_chain.begin(), durable_chain.end(), id) !=
        durable_chain.end()) {
      break;
    }
    const Status read = disk_->Read(id, &page);
    if (!read.ok()) {
      if (!durable_chain.empty() &&
          read.code() == StatusCode::kInvalidArgument) {
        break;  // dangling garbage link: end of durable history
      }
      return read;  // head unreadable or transient: stay dirty, retry later
    }
    uint32_t end = 0;
    size_t valid = 0;
    DurableEnd(page, &end, &valid);
    if (!durable_chain.empty() && valid == 0) break;  // torn link target
    durable_chain.push_back(id);
    durable_records += valid;
    tail_image = page;
    const PageId next = page.ReadAt<PageId>(kNextOff);
    if (next == kInvalidPageId) break;
    id = next;
  }
  // Pages the device no longer reaches (a truncate whose head write landed
  // despite the error) go back to the allocator.
  for (const PageId old : chain_) {
    if (std::find(durable_chain.begin(), durable_chain.end(), old) ==
        durable_chain.end()) {
      (void)disk_->Free(old);
    }
  }
  chain_ = std::move(durable_chain);
  uint32_t end = 0;
  size_t valid = 0;
  DurableEnd(tail_image, &end, &valid);
  // Scrub whatever follows the durable records so the next append rewrites
  // clean bytes over any torn region.
  std::memset(tail_image.data() + end, 0, page_size - end);
  tail_image.WriteAt<uint32_t>(kUsedOff, end);
  tail_ = std::move(tail_image);
  tail_used_ = end;
  record_count_ = durable_records;
  tail_dirty_ = false;
  return Status::OK();
}

Status AdLog::Append(uint8_t type, const uint8_t* payload, uint16_t len) {
  const storage::ScopedComponent tag(disk_->tracker(),
                                     storage::Component::kAdLog);
  VIEWMAT_CHECK(len <= max_payload());
  if (tail_dirty_) VIEWMAT_RETURN_IF_ERROR(ResyncTail());
  const uint32_t need = kRecordHeader + len;
  const uint32_t page_size = disk_->page_size();

  if (tail_used_ + need > page_size) {
    // Tail is full: place the record on a fresh page, write it, and only
    // then link it from the old tail.
    const PageId fresh = disk_->Allocate();
    Page next_page(page_size);
    InitHeader(&next_page);
    PutRecord(&next_page, kHeaderSize, type, payload, len);
    next_page.WriteAt<uint32_t>(kUsedOff, kHeaderSize + need);
    Status st = disk_->Write(fresh, next_page);
    if (!st.ok()) {
      // Not yet linked, so whatever landed is unreachable; the handle can
      // be returned safely.
      (void)disk_->Free(fresh);
      return st;
    }
    tail_.WriteAt<PageId>(kNextOff, fresh);
    st = disk_->Write(chain_.back(), tail_);
    if (!st.ok()) {
      // Did the link land anyway? Read the old tail back to find out.
      Page durable(page_size);
      const Status read = disk_->Read(chain_.back(), &durable);
      if (!read.ok()) {
        // Linkage unknown: the fresh page may be durably reachable, so its
        // handle must not be reused — leak it and resync before the next
        // append decides where to write.
        tail_.WriteAt<PageId>(kNextOff, kInvalidPageId);
        tail_dirty_ = true;
        return st;
      }
      if (durable.ReadAt<PageId>(kNextOff) != fresh) {
        // The link is absent (or torn garbage, repaired when the whole page
        // is next rewritten): the fresh page is unreachable.
        tail_.WriteAt<PageId>(kNextOff, kInvalidPageId);
        (void)disk_->Free(fresh);
        return st;
      }
      // The link landed in full before the fault was reported: durable ==
      // acknowledged. Fall through to the success path.
    }
    chain_.push_back(fresh);
    tail_ = std::move(next_page);
    tail_used_ = kHeaderSize + need;
    ++record_count_;
    return Status::OK();
  }

  const uint32_t off = tail_used_;
  PutRecord(&tail_, off, type, payload, len);
  tail_.WriteAt<uint32_t>(kUsedOff, off + need);
  const Status st = disk_->Write(chain_.back(), tail_);
  if (!st.ok()) {
    // Find out what the device durably holds before deciding the record's
    // fate: a torn write may still have landed it in full.
    Page durable(page_size);
    const Status read = disk_->Read(chain_.back(), &durable);
    if (!read.ok()) {
      tail_dirty_ = true;
      return st;
    }
    uint32_t end = 0;
    size_t valid = 0;
    DurableEnd(durable, &end, &valid);
    if (end >= off + need &&
        std::memcmp(durable.data() + off, tail_.data() + off, need) == 0) {
      // Landed in full despite the error: durable == acknowledged.
      tail_used_ = off + need;
      ++record_count_;
      return Status::OK();
    }
    // Not durable: scrub the failed record from the in-memory image so the
    // next append rewrites clean bytes over the torn region — the record
    // can never retroactively become durable.
    std::memset(tail_.data() + off, 0, page_size - off);
    tail_.WriteAt<uint32_t>(kUsedOff, off);
    return st;
  }
  tail_used_ = off + need;
  ++record_count_;
  return Status::OK();
}

Status AdLog::Scan(const Visitor& visit, bool* torn_tail) const {
  const storage::ScopedComponent tag(disk_->tracker(),
                                     storage::Component::kAdLog);
  if (torn_tail != nullptr) *torn_tail = false;
  const uint32_t page_size = disk_->page_size();
  Page page(page_size);
  PageId id = chain_.front();
  std::vector<PageId> visited;
  // Walk the on-disk chain, not the in-memory one: recovery must trust only
  // what the device durably holds.
  bool first = true;
  while (id != kInvalidPageId) {
    // A torn link write can leave a garbage next pointer; if it happens to
    // point back into the chain, terminate instead of looping.
    if (std::find(visited.begin(), visited.end(), id) != visited.end()) {
      if (torn_tail != nullptr) *torn_tail = true;
      return Status::OK();
    }
    visited.push_back(id);
    const Status read = disk_->Read(id, &page);
    if (!read.ok()) {
      // A dangling link (torn link write) shows up as an invalid page id on
      // a non-head page: end of durable history. Anything else — e.g. a
      // transient injected fault — propagates so the caller can retry.
      if (!first && read.code() == StatusCode::kInvalidArgument) {
        if (torn_tail != nullptr) *torn_tail = true;
        return Status::OK();
      }
      return read;
    }
    // Parse records by their own checksums; the `used` header travels in
    // the same (tearable) block write as the record bytes, so it is never
    // trusted. Zero bytes are a clean end; anything else is a torn record.
    uint32_t off = kHeaderSize;
    size_t valid_here = 0;
    while (off + kRecordHeader <= page_size) {
      const uint8_t type = page.ReadAt<uint8_t>(off);
      const uint16_t len = page.ReadAt<uint16_t>(off + 1);
      const uint32_t sum = page.ReadAt<uint32_t>(off + 3);
      if (off + kRecordHeader + len > page_size ||
          sum != Checksum(type, page.data() + off + kRecordHeader, len)) {
        if ((type != 0 || len != 0 || sum != 0) && torn_tail != nullptr) {
          *torn_tail = true;
        }
        break;
      }
      if (!visit(type, page.data() + off + kRecordHeader, len)) {
        return Status::OK();
      }
      off += kRecordHeader + len;
      ++valid_here;
    }
    const PageId next = page.ReadAt<PageId>(kNextOff);
    if (!first && valid_here == 0) {
      // A linked page that parses to nothing is a torn link target, not
      // log history.
      if (torn_tail != nullptr) *torn_tail = true;
      return Status::OK();
    }
    first = false;
    id = next;
  }
  return Status::OK();
}

Status AdLog::Truncate() {
  const storage::ScopedComponent tag(disk_->tracker(),
                                     storage::Component::kAdLog);
  // Empty head first, then free the remainder: a crash in between leaves a
  // logically empty log (plus leaked pages), never partial history.
  Page empty(disk_->page_size());
  InitHeader(&empty);
  const Status st = disk_->Write(chain_.front(), empty);
  if (!st.ok()) {
    // The head write may or may not have landed; resync before the next
    // append so the old in-memory tail cannot resurrect truncated history.
    tail_dirty_ = true;
    return st;
  }
  // Once the head is empty the truncation is logically complete — the old
  // chain is unreachable. Frees are best-effort: under a crashed device
  // they leak pages (a space cost), never history.
  for (size_t i = 1; i < chain_.size(); ++i) {
    (void)disk_->Free(chain_[i]);
  }
  chain_.resize(1);
  tail_ = std::move(empty);
  tail_used_ = kHeaderSize;
  record_count_ = 0;
  tail_dirty_ = false;
  return Status::OK();
}

}  // namespace viewmat::hr
