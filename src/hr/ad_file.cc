#include "hr/ad_file.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/trace.h"

namespace viewmat::hr {

namespace {

void EncodeU64(uint64_t v, uint8_t out[8]) {
  std::memcpy(out, &v, sizeof(v));
}

uint64_t DecodeU64(const uint8_t* in) {
  uint64_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

}  // namespace

AdFile::AdFile(storage::BufferPool* pool, db::Schema schema, size_t key_field,
               Options options)
    : pool_(pool),
      schema_(std::move(schema)),
      key_field_(key_field),
      options_(options),
      bloom_(storage::BloomFilter::ForExpectedKeys(options.expected_keys,
                                                   options.bloom_fp_rate)) {
  VIEWMAT_CHECK(key_field_ < schema_.field_count());
  hash_ = std::make_unique<storage::HashIndex>(
      pool_, 1 + schema_.record_size(), options.hash_buckets);
  if (options_.enable_wal) {
    log_ = std::make_unique<AdLog>(pool_->disk(), options_.lsn_allocator,
                                   options_.log_auto_sync);
    VIEWMAT_CHECK_MSG(schema_.record_size() <= log_->max_payload(),
                      "AD tuple too large for one WAL record");
  }
}

std::vector<uint8_t> AdFile::EncodeEntry(Role role,
                                         const db::Tuple& t) const {
  std::vector<uint8_t> buf(1 + schema_.record_size());
  buf[0] = static_cast<uint8_t>(role);
  t.Serialize(schema_, buf.data() + 1);
  return buf;
}

Status AdFile::RemoveEntry(Role role, const db::Tuple& t) {
  const std::vector<uint8_t> want = EncodeEntry(role, t);
  const int64_t key = t.at(key_field_).AsInt64();
  return hash_->Delete(key, [&](const uint8_t* payload) {
    return std::memcmp(payload, want.data(), want.size()) == 0;
  });
}

Status AdFile::ApplyInsert(const db::Tuple& t) {
  // A pending deletion of the identical tuple nets to nothing.
  if (RemoveEntry(Role::kDeleted, t).ok()) return Status::OK();
  const std::vector<uint8_t> entry = EncodeEntry(Role::kAppended, t);
  const int64_t key = t.at(key_field_).AsInt64();
  VIEWMAT_RETURN_IF_ERROR(hash_->Insert(key, entry.data()));
  bloom_.Add(static_cast<uint64_t>(key));
  return Status::OK();
}

Status AdFile::ApplyDelete(const db::Tuple& t) {
  if (RemoveEntry(Role::kAppended, t).ok()) return Status::OK();
  const std::vector<uint8_t> entry = EncodeEntry(Role::kDeleted, t);
  const int64_t key = t.at(key_field_).AsInt64();
  VIEWMAT_RETURN_IF_ERROR(hash_->Insert(key, entry.data()));
  bloom_.Add(static_cast<uint64_t>(key));
  return Status::OK();
}

Status AdFile::LogIntent(WalRecord type, const db::Tuple& t) {
  if (log_ == nullptr) return Status::OK();
  storage::DiskInterface* disk = pool_->disk();
  VIEWMAT_RETURN_IF_ERROR(
      disk->AtCrashPoint(storage::CrashPoint::kBeforeWalAppend));
  std::vector<uint8_t> buf(schema_.record_size());
  t.Serialize(schema_, buf.data());
  VIEWMAT_RETURN_IF_ERROR(log_->Append(static_cast<uint8_t>(type), buf.data(),
                                       static_cast<uint16_t>(buf.size())));
  return disk->AtCrashPoint(storage::CrashPoint::kAfterWalAppend);
}

Status AdFile::LogMarker(WalRecord type, uint64_t value) {
  if (log_ == nullptr) return Status::OK();
  uint8_t buf[8];
  EncodeU64(value, buf);
  VIEWMAT_RETURN_IF_ERROR(
      log_->Append(static_cast<uint8_t>(type), buf, sizeof(buf)));
  // Epoch markers order the fold protocol's crash analysis (begin <
  // view-patched < fold-commit relative to the page writes between them),
  // so they stay write-through even when per-transaction records batch.
  if (!options_.log_auto_sync) {
    VIEWMAT_RETURN_IF_ERROR(log_->Sync());
    // The eager sync drags any buffered per-transaction records to the
    // device with it, so every commit issued so far just became durable.
    durable_txn_floor_ = last_committed_txn_;
  }
  return Status::OK();
}

Status AdFile::SyncLog() {
  if (log_ == nullptr) return Status::OK();
  VIEWMAT_RETURN_IF_ERROR(log_->Sync());
  durable_txn_floor_ = last_committed_txn_;
  return Status::OK();
}

Status AdFile::RecordInsert(const db::Tuple& t) {
  VIEWMAT_RETURN_IF_ERROR(LogIntent(WalRecord::kIntentInsert, t));
  const Status st = ApplyInsert(t);
  // The intent is durable but the hash file missed it: the two now disagree
  // until Recover() replays the log.
  if (!st.ok() && log_ != nullptr) needs_recovery_ = true;
  return st;
}

Status AdFile::RecordDelete(const db::Tuple& t) {
  VIEWMAT_RETURN_IF_ERROR(LogIntent(WalRecord::kIntentDelete, t));
  const Status st = ApplyDelete(t);
  if (!st.ok() && log_ != nullptr) needs_recovery_ = true;
  return st;
}

Status AdFile::CommitTxn(uint64_t txn_id, uint64_t intent_count) {
  if (log_ == nullptr) {
    last_committed_txn_ = txn_id;
    durable_txn_floor_ = txn_id;
    return Status::OK();
  }
  // The count scopes the commit to this transaction's own intents: replay
  // must never adopt stray intents an earlier failed transaction left
  // durable in the log.
  uint8_t buf[16];
  EncodeU64(txn_id, buf);
  EncodeU64(intent_count, buf + 8);
  const Status st = log_->Append(static_cast<uint8_t>(WalRecord::kTxnCommit),
                                 buf, sizeof(buf));
  if (!st.ok()) {
    // Intents were applied eagerly but never committed; the hash file is
    // ahead of the committed log until Recover() rolls the tail back.
    needs_recovery_ = true;
    return st;
  }
  last_committed_txn_ = txn_id;
  // Write-through mode made the record durable in the Append itself; in
  // group-commit mode durability waits for the next SyncLog/marker sync.
  if (options_.log_auto_sync) durable_txn_floor_ = txn_id;
  return Status::OK();
}

Status AdFile::LogRefreshBegin(uint64_t epoch) {
  return LogMarker(WalRecord::kRefreshBegin, epoch);
}

Status AdFile::LogViewPatched(uint64_t epoch) {
  return LogMarker(WalRecord::kViewPatched, epoch);
}

Status AdFile::LogFoldCommit(uint64_t epoch) {
  return LogMarker(WalRecord::kFoldCommit, epoch);
}

void AdFile::ScrambleForTest() {
  hash_ = std::make_unique<storage::HashIndex>(
      pool_, 1 + schema_.record_size(), options_.hash_buckets);
  bloom_.Clear();
  needs_recovery_ = true;
}

Status AdFile::Recover(RecoveryInfo* info) {
  if (log_ == nullptr) {
    return Status::FailedPrecondition("AD file has no WAL to recover from");
  }
  RecoveryInfo local;
  RecoveryInfo* out = info != nullptr ? info : &local;
  *out = RecoveryInfo();
  storage::CostTracker* tracker = pool_->disk()->tracker();
  obs::ScopedSpan recover_span(storage::TracerOf(tracker), "recover.ad");

  // Pass 1: read the durable history. Intents buffer until their commit
  // record; a fold-commit marker means everything committed so far was
  // folded into the base relation and no longer belongs in the AD file.
  struct PendingIntent {
    WalRecord type;
    db::Tuple tuple;
  };
  std::vector<PendingIntent> committed;
  std::vector<PendingIntent> uncommitted;
  bool torn = false;
  obs::ScopedSpan replay_span(storage::TracerOf(tracker),
                              "recover.log_replay");
  VIEWMAT_RETURN_IF_ERROR(log_->Scan(
      [&](uint8_t type, const uint8_t* payload, uint16_t len) {
        switch (static_cast<WalRecord>(type)) {
          case WalRecord::kIntentInsert:
          case WalRecord::kIntentDelete:
            uncommitted.push_back(
                {static_cast<WalRecord>(type),
                 db::Tuple::Deserialize(schema_, payload)});
            break;
          case WalRecord::kTxnCommit: {
            VIEWMAT_CHECK(len == 16);
            out->last_committed_txn = DecodeU64(payload);
            const uint64_t count = DecodeU64(payload + 8);
            // Only the committing transaction's own intents — the trailing
            // `count` records — take effect. Anything buffered before them
            // was left behind by a transaction that failed before its
            // commit record: aborted, never to be replayed.
            const size_t keep = static_cast<size_t>(
                std::min<uint64_t>(count, uncommitted.size()));
            out->discarded_intents += uncommitted.size() - keep;
            for (size_t i = uncommitted.size() - keep; i < uncommitted.size();
                 ++i) {
              committed.push_back(std::move(uncommitted[i]));
            }
            uncommitted.clear();
            break;
          }
          case WalRecord::kRefreshBegin:
            VIEWMAT_CHECK(len == 8);
            out->last_epoch_begun = DecodeU64(payload);
            break;
          case WalRecord::kViewPatched:
            VIEWMAT_CHECK(len == 8);
            out->view_patched_epoch = DecodeU64(payload);
            break;
          case WalRecord::kFoldCommit:
            VIEWMAT_CHECK(len == 8);
            out->fold_committed_epoch = DecodeU64(payload);
            committed.clear();
            break;
        }
        return true;
      },
      &torn));
  out->torn_tail = torn;
  out->discarded_intents += uncommitted.size();
  replay_span.End();

  // Pass 2: rebuild the hash file and Bloom filter from the committed
  // history, with the same netting semantics the original calls used. From
  // the first mutation until the replay completes, the in-memory structures
  // are not trustworthy — a failure partway must leave the flag set so no
  // reader serves the half-rebuilt state.
  needs_recovery_ = true;
  obs::ScopedSpan rebuild_span(storage::TracerOf(tracker),
                               "recover.bloom_rebuild");
  {
    // The hash replay below re-adds surviving keys; clearing both here
    // makes the rebuild a fresh start (Bloom upkeep is free of I/O, so the
    // kBloom component only ever shows cost if a future change adds some).
    const storage::ScopedComponent bloom_tag(tracker,
                                             storage::Component::kBloom);
    bloom_.Clear();
  }
  VIEWMAT_RETURN_IF_ERROR(hash_->Clear());
  for (const PendingIntent& p : committed) {
    if (p.type == WalRecord::kIntentInsert) {
      VIEWMAT_RETURN_IF_ERROR(ApplyInsert(p.tuple));
    } else {
      VIEWMAT_RETURN_IF_ERROR(ApplyDelete(p.tuple));
    }
    ++out->replayed_intents;
  }
  last_committed_txn_ = out->last_committed_txn;
  // Everything the scan saw is durable by definition, but the floor may
  // already exceed the scan when a fold's Reset truncated older commits'
  // records away — their effects live on in the folded base.
  durable_txn_floor_ = std::max(durable_txn_floor_, out->last_committed_txn);
  needs_recovery_ = false;
  return Status::OK();
}

Status AdFile::VisitKey(
    int64_t key,
    const std::function<bool(Role, const db::Tuple&)>& visit) const {
  return hash_->FindAll(key, [&](int64_t, const uint8_t* payload) {
    const Role role = static_cast<Role>(payload[0]);
    return visit(role, db::Tuple::Deserialize(schema_, payload + 1));
  });
}

Status AdFile::ScanNet(std::vector<db::Tuple>* a_net,
                       std::vector<db::Tuple>* d_net) const {
  return hash_->ScanAll([&](int64_t, const uint8_t* payload) {
    const Role role = static_cast<Role>(payload[0]);
    db::Tuple t = db::Tuple::Deserialize(schema_, payload + 1);
    if (role == Role::kAppended) {
      a_net->push_back(std::move(t));
    } else {
      d_net->push_back(std::move(t));
    }
    return true;
  });
}

Status AdFile::Reset() {
  VIEWMAT_RETURN_IF_ERROR(hash_->Clear());
  bloom_.Clear();
  if (log_ != nullptr) {
    VIEWMAT_RETURN_IF_ERROR(
        pool_->disk()->AtCrashPoint(storage::CrashPoint::kMidAdReset));
    VIEWMAT_RETURN_IF_ERROR(log_->Truncate());
  }
  return Status::OK();
}

}  // namespace viewmat::hr
