#include "hr/ad_file.h"

#include <cstring>

#include "common/logging.h"

namespace viewmat::hr {

AdFile::AdFile(storage::BufferPool* pool, db::Schema schema, size_t key_field,
               Options options)
    : pool_(pool),
      schema_(std::move(schema)),
      key_field_(key_field),
      bloom_(storage::BloomFilter::ForExpectedKeys(options.expected_keys,
                                                   options.bloom_fp_rate)) {
  VIEWMAT_CHECK(key_field_ < schema_.field_count());
  hash_ = std::make_unique<storage::HashIndex>(
      pool_, 1 + schema_.record_size(), options.hash_buckets);
}

std::vector<uint8_t> AdFile::EncodeEntry(Role role,
                                         const db::Tuple& t) const {
  std::vector<uint8_t> buf(1 + schema_.record_size());
  buf[0] = static_cast<uint8_t>(role);
  t.Serialize(schema_, buf.data() + 1);
  return buf;
}

Status AdFile::RemoveEntry(Role role, const db::Tuple& t) {
  const std::vector<uint8_t> want = EncodeEntry(role, t);
  const int64_t key = t.at(key_field_).AsInt64();
  return hash_->Delete(key, [&](const uint8_t* payload) {
    return std::memcmp(payload, want.data(), want.size()) == 0;
  });
}

Status AdFile::RecordInsert(const db::Tuple& t) {
  // A pending deletion of the identical tuple nets to nothing.
  if (RemoveEntry(Role::kDeleted, t).ok()) return Status::OK();
  const std::vector<uint8_t> entry = EncodeEntry(Role::kAppended, t);
  const int64_t key = t.at(key_field_).AsInt64();
  VIEWMAT_RETURN_IF_ERROR(hash_->Insert(key, entry.data()));
  bloom_.Add(static_cast<uint64_t>(key));
  return Status::OK();
}

Status AdFile::RecordDelete(const db::Tuple& t) {
  if (RemoveEntry(Role::kAppended, t).ok()) return Status::OK();
  const std::vector<uint8_t> entry = EncodeEntry(Role::kDeleted, t);
  const int64_t key = t.at(key_field_).AsInt64();
  VIEWMAT_RETURN_IF_ERROR(hash_->Insert(key, entry.data()));
  bloom_.Add(static_cast<uint64_t>(key));
  return Status::OK();
}

Status AdFile::VisitKey(
    int64_t key,
    const std::function<bool(Role, const db::Tuple&)>& visit) const {
  return hash_->FindAll(key, [&](int64_t, const uint8_t* payload) {
    const Role role = static_cast<Role>(payload[0]);
    return visit(role, db::Tuple::Deserialize(schema_, payload + 1));
  });
}

Status AdFile::ScanNet(std::vector<db::Tuple>* a_net,
                       std::vector<db::Tuple>* d_net) const {
  return hash_->ScanAll([&](int64_t, const uint8_t* payload) {
    const Role role = static_cast<Role>(payload[0]);
    db::Tuple t = db::Tuple::Deserialize(schema_, payload + 1);
    if (role == Role::kAppended) {
      a_net->push_back(std::move(t));
    } else {
      d_net->push_back(std::move(t));
    }
    return true;
  });
}

Status AdFile::Reset() {
  VIEWMAT_RETURN_IF_ERROR(hash_->Clear());
  bloom_.Clear();
  return Status::OK();
}

}  // namespace viewmat::hr
