#ifndef VIEWMAT_HR_AD_LOG_H_
#define VIEWMAT_HR_AD_LOG_H_

#include "storage/wal.h"

namespace viewmat::hr {

/// The AD file's write-ahead log. Since the unified-WAL refactor this is a
/// thin configuration of storage::WriteAheadLog: write-through appends (an
/// AD intent must be durable when Append returns), cost attribution under
/// Component::kAdLog, and — when the caller supplies a shared LsnAllocator
/// — LSNs drawn from the same space as the system's redo WAL, so AD-log
/// records and transaction-log records sit in one total order. All
/// mechanics (checksummed records, torn-tail detection, read-back adoption
/// of ambiguous writes, resync-from-device) live in the base class; see
/// storage/wal.h.
/// `auto_sync = false` puts the log in buffered (group-commit) mode:
/// appends stage in the tail page and the owner syncs at batch
/// boundaries — see AdFile::SyncLog.
class AdLog : public storage::WriteAheadLog {
 public:
  explicit AdLog(storage::DiskInterface* disk,
                 storage::LsnAllocator* lsns = nullptr, bool auto_sync = true)
      : WriteAheadLog(disk, MakeOptions(lsns, auto_sync)) {}

 private:
  static storage::WriteAheadLog::Options MakeOptions(
      storage::LsnAllocator* lsns, bool auto_sync) {
    storage::WriteAheadLog::Options options;
    options.auto_sync = auto_sync;
    options.lsn_allocator = lsns;
    options.component = storage::Component::kAdLog;
    return options;
  }
};

}  // namespace viewmat::hr

#endif  // VIEWMAT_HR_AD_LOG_H_
