#ifndef VIEWMAT_HR_AD_LOG_H_
#define VIEWMAT_HR_AD_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"

namespace viewmat::hr {

/// The AD file's write-ahead log: an append-only chain of checksummed
/// records written straight to the disk (no buffer pool — a WAL append must
/// be durable when it returns). Intent records land here *before* the hash
/// file is touched, so after any crash the hash file and Bloom filter are
/// rebuildable from the log alone.
///
/// Torn-write safety: each record carries a length and an FNV-1a checksum.
/// Records validate themselves — the scanner never trusts the page's `used`
/// header, which travels in the same (tearable) block write as the record
/// bytes. A write torn anywhere leaves every previously-acknowledged record
/// intact (their bytes are rewritten identically) and makes the torn tail
/// record fail its checksum.
///
/// Acknowledgment is truthful both ways: when a write reports failure, the
/// tail is read back to learn what the device durably holds. A record that
/// landed in full despite the error is adopted and acknowledged (OK); a
/// record that did not land is scrubbed from the in-memory image so a later
/// append rewrites clean bytes over any torn region — it can never
/// retroactively become durable. Only when the read-back itself fails is
/// the outcome unknown; the log then resynchronizes from the device before
/// the next append, so the durable history stays append-only either way.
///
/// Page layout:   [u32 used][PageId next][records...]
/// Record layout: [u8 type][u16 len][u32 checksum][payload]
class AdLog {
 public:
  /// type, payload, payload length; return false to stop the scan.
  using Visitor = std::function<bool(uint8_t, const uint8_t*, uint16_t)>;

  explicit AdLog(storage::DiskInterface* disk);
  ~AdLog();

  AdLog(const AdLog&) = delete;
  AdLog& operator=(const AdLog&) = delete;

  /// Appends one record and writes the tail page through to disk. The
  /// record is durable (will be seen by Scan after a crash) iff this
  /// returns OK — except when the device fails both the write and the
  /// read-back probe, in which case the record's fate is unknown until the
  /// next successful Scan; callers treat such a transaction as unresolved
  /// and consult the recovered log.
  Status Append(uint8_t type, const uint8_t* payload, uint16_t len);

  /// Replays every durable record in append order. Stops early (OK) at a
  /// torn tail, reporting it through `torn_tail` when non-null.
  Status Scan(const Visitor& visit, bool* torn_tail = nullptr) const;

  /// Logically empties the log: writes a fresh empty head page first, then
  /// frees the remainder of the old chain. A crash in between leaves an
  /// empty log plus leaked pages — never a partially-truncated history.
  Status Truncate();

  /// Records acknowledged since construction or the last Truncate.
  /// In-memory bookkeeping (informational; Scan is the durable source of
  /// truth).
  size_t record_count() const { return record_count_; }
  size_t page_count() const { return chain_.size(); }

  /// Largest payload a record can carry on this disk's page size.
  uint16_t max_payload() const;

 private:
  static constexpr uint32_t kUsedOff = 0;
  static constexpr uint32_t kNextOff = 4;
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kRecordHeader = 7;  // u8 type + u16 len + u32 sum

  static uint32_t Checksum(uint8_t type, const uint8_t* payload, uint16_t len);

  /// Writes an empty page header into `page`.
  void InitHeader(storage::Page* page) const;

  /// Serializes one record into `page` at `off`.
  void PutRecord(storage::Page* page, uint32_t off, uint8_t type,
                 const uint8_t* payload, uint16_t len) const;

  /// Walks `page`'s records by checksum, returning the offset one past the
  /// last valid record and how many were valid.
  void DurableEnd(const storage::Page& page, uint32_t* end,
                  size_t* count) const;

  /// Re-reads the durable tail (following any link an ambiguous failure may
  /// have landed) and adopts it as the in-memory tail image.
  Status ResyncTail();

  storage::DiskInterface* disk_;
  std::vector<storage::PageId> chain_;  ///< head first; tail is open
  storage::Page tail_;                  ///< in-memory copy of the tail page
  uint32_t tail_used_ = kHeaderSize;
  size_t record_count_ = 0;
  /// True when a failed write could not be read back: the in-memory tail
  /// may disagree with the device and must resync before the next append.
  bool tail_dirty_ = false;
};

}  // namespace viewmat::hr

#endif  // VIEWMAT_HR_AD_LOG_H_
