#ifndef VIEWMAT_HR_HYPOTHETICAL_RELATION_H_
#define VIEWMAT_HR_HYPOTHETICAL_RELATION_H_

#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "db/transaction.h"
#include "hr/ad_file.h"

namespace viewmat::hr {

/// A hypothetical relation (§2.2.1, after [Wood83, Agra83]): the base
/// relation R plus an AD differential file. The true value is
/// R_T = (R ∪ A) − D. Update transactions only touch the AD file (and the
/// paper's 3-I/O read-modify path); the base relation is folded forward at
/// refresh time, which also hands the accumulated A-net/D-net sets to the
/// deferred view maintenance engine.
class HypotheticalRelation {
 public:
  HypotheticalRelation(db::Relation* base, AdFile::Options ad_options);

  HypotheticalRelation(const HypotheticalRelation&) = delete;
  HypotheticalRelation& operator=(const HypotheticalRelation&) = delete;

  db::Relation* base() { return base_; }
  const AdFile& ad() const { return ad_; }
  AdFile* mutable_ad() { return &ad_; }

  /// Records a transaction's net change to this relation into the AD file,
  /// following the paper's per-tuple update procedure: the caller has
  /// already read the original tuple (I/O #1); recording here performs the
  /// AD page read + write (I/O #2 and #3, shared across tuples landing on
  /// the same page via the buffer pool).
  Status RecordChanges(const db::NetChange& net);

  /// RecordChanges followed by the AD file's transaction commit record
  /// (WAL mode): until the commit record is durable the recorded intents
  /// are an uncommitted tail that recovery discards. Callers should treat a
  /// non-OK result as "transaction not applied" and verify against
  /// ad().last_committed_txn() after a crash.
  Status RecordChangesCommitted(const db::NetChange& net, uint64_t txn_id);

  /// Reads a tuple through the hypothetical relation: Bloom screen, then AD
  /// probe if admitted, then the base relation, suppressing tuples with
  /// pending deletions. Visits every visible tuple with the key.
  Status FindAllByKey(int64_t key, const db::Relation::TupleVisitor& visit) const;

  /// Clustered range scan through the hypothetical relation: base tuples
  /// with pending deletions suppressed, pending insertions merged in. Costs
  /// one AD full scan (C_ADread) plus the base range scan — the read path
  /// that lets query modification run over an unfolded differential.
  Status RangeScanByKey(int64_t lo, int64_t hi,
                        const db::Relation::TupleVisitor& visit) const;

  /// The net changes accumulated since the last Fold (C_ADread full scan).
  Status NetChanges(std::vector<db::Tuple>* a_net,
                    std::vector<db::Tuple>* d_net) const;

  /// Folds the differential into the base relation — R := (R ∪ A) − D —
  /// and resets the AD file. Returns the folded net sets through the out
  /// parameters when non-null (the deferred engine consumes them).
  Status Fold(std::vector<db::Tuple>* a_net, std::vector<db::Tuple>* d_net);

  /// Applies the given net sets to the base relation without touching the
  /// AD file — the fold half of the crash-safe refresh protocol, which
  /// resets the AD file only after a durable fold-commit marker. With
  /// `idempotent` set the fold tolerates re-execution over a partially
  /// folded base (roll-forward after a mid-fold crash): deletes ignore
  /// NotFound and inserts skip tuples already present.
  Status FoldNoReset(const std::vector<db::Tuple>& a_net,
                     const std::vector<db::Tuple>& d_net, bool idempotent);

  /// Rebuilds the AD file from its write-ahead log (AdFile::Recover) and
  /// recomputes the visible-tuple count from the recovered state. The
  /// in-memory bookkeeping is distrusted entirely: after this returns OK
  /// the HR reflects exactly the durable committed history.
  Status Recover(AdFile::RecoveryInfo* info);

  /// Tuples visible through the HR (base + pending inserts − pending
  /// deletes). O(1), maintained incrementally.
  size_t visible_tuple_count() const { return visible_count_; }

 private:
  db::Relation* base_;
  AdFile ad_;
  size_t visible_count_;
};

}  // namespace viewmat::hr

#endif  // VIEWMAT_HR_HYPOTHETICAL_RELATION_H_
