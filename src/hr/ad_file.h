#ifndef VIEWMAT_HR_AD_FILE_H_
#define VIEWMAT_HR_AD_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "storage/bloom_filter.h"
#include "storage/buffer_pool.h"
#include "storage/hash_index.h"

namespace viewmat::hr {

/// The combined differential file of §2.2.2: one clustered-hash file per
/// base relation holding both appended (role = A) and deleted (role = D)
/// tuples, distinguished by a role attribute. Keeping A and D together means
/// an update that leaves the key unchanged lands old and new versions on the
/// same page — the paper's 3-I/O update path instead of 5 with separate
/// files.
///
/// A Bloom filter over keys [Seve76, Bloo70] screens reads: a negative
/// answer proves the key has no AD entries, avoiding the probe I/O.
///
/// Net semantics are maintained eagerly: recording the deletion of a tuple
/// that has an identical role-A entry removes that entry (and vice versa),
/// so at refresh time the file's A entries are exactly A-net and its D
/// entries exactly D-net, with A ∩ D = ∅ as the differential update
/// algorithm requires.
class AdFile {
 public:
  enum class Role : uint8_t { kDeleted = 0, kAppended = 1 };

  struct Options {
    /// Hash buckets for the AD file (it is small; a handful of pages).
    uint32_t hash_buckets = 8;
    /// Bloom filter sizing.
    size_t expected_keys = 256;
    double bloom_fp_rate = 0.01;
  };

  AdFile(storage::BufferPool* pool, db::Schema schema, size_t key_field,
         Options options);

  AdFile(const AdFile&) = delete;
  AdFile& operator=(const AdFile&) = delete;

  /// Records that `t` was appended to the hypothetical relation. Cancels an
  /// identical pending deletion if present.
  Status RecordInsert(const db::Tuple& t);

  /// Records that `t` was deleted. Cancels an identical pending append if
  /// present.
  Status RecordDelete(const db::Tuple& t);

  /// True if the Bloom filter admits the key might have AD entries. Free of
  /// I/O; false positives possible, false negatives impossible.
  bool MightContainKey(int64_t key) const {
    return bloom_.MayContain(static_cast<uint64_t>(key));
  }

  /// Visits all entries for `key` (probes the hash file: I/O charged).
  Status VisitKey(int64_t key,
                  const std::function<bool(Role, const db::Tuple&)>& visit) const;

  /// Reads the whole file (the C_ADread full scan before a refresh) and
  /// returns the net insert/delete sets.
  Status ScanNet(std::vector<db::Tuple>* a_net,
                 std::vector<db::Tuple>* d_net) const;

  /// Empties the file and the Bloom filter (after R := (R ∪ A) − D).
  Status Reset();

  size_t entry_count() const { return hash_->entry_count(); }
  size_t page_count() const { return hash_->page_count(); }
  const storage::BloomFilter& bloom() const { return bloom_; }

 private:
  /// Payload layout: [u8 role][serialized tuple].
  std::vector<uint8_t> EncodeEntry(Role role, const db::Tuple& t) const;

  /// Removes one entry equal to (role, t); NotFound if absent.
  Status RemoveEntry(Role role, const db::Tuple& t);

  storage::BufferPool* pool_;
  db::Schema schema_;
  size_t key_field_;
  std::unique_ptr<storage::HashIndex> hash_;
  storage::BloomFilter bloom_;
};

}  // namespace viewmat::hr

#endif  // VIEWMAT_HR_AD_FILE_H_
