#ifndef VIEWMAT_HR_AD_FILE_H_
#define VIEWMAT_HR_AD_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "hr/ad_log.h"
#include "storage/bloom_filter.h"
#include "storage/buffer_pool.h"
#include "storage/hash_index.h"

namespace viewmat::hr {

/// The combined differential file of §2.2.2: one clustered-hash file per
/// base relation holding both appended (role = A) and deleted (role = D)
/// tuples, distinguished by a role attribute. Keeping A and D together means
/// an update that leaves the key unchanged lands old and new versions on the
/// same page — the paper's 3-I/O update path instead of 5 with separate
/// files.
///
/// A Bloom filter over keys [Seve76, Bloo70] screens reads: a negative
/// answer proves the key has no AD entries, avoiding the probe I/O.
///
/// Net semantics are maintained eagerly: recording the deletion of a tuple
/// that has an identical role-A entry removes that entry (and vice versa),
/// so at refresh time the file's A entries are exactly A-net and its D
/// entries exactly D-net, with A ∩ D = ∅ as the differential update
/// algorithm requires.
///
/// Durability: with Options::enable_wal the file keeps a write-ahead log
/// (AdLog). Every mutation appends an intent record before touching the
/// hash file; a transaction's intents take effect at its commit record.
/// Recover() rebuilds the hash file and the Bloom filter from the log
/// alone, discarding uncommitted tails — the crash-safety foundation the
/// deferred strategy's atomic refresh builds on.
class AdFile {
 public:
  enum class Role : uint8_t { kDeleted = 0, kAppended = 1 };

  /// WAL record types (the u8 type byte of AdLog records).
  enum class WalRecord : uint8_t {
    kIntentInsert = 1,  ///< payload: serialized tuple
    kIntentDelete = 2,  ///< payload: serialized tuple
    kTxnCommit = 3,     ///< payload: u64 transaction id + u64 intent count
    kRefreshBegin = 4,  ///< payload: u64 refresh epoch
    kViewPatched = 5,   ///< payload: u64 refresh epoch
    kFoldCommit = 6,    ///< payload: u64 refresh epoch
  };

  struct Options {
    /// Hash buckets for the AD file (it is small; a handful of pages).
    uint32_t hash_buckets = 8;
    /// Bloom filter sizing.
    size_t expected_keys = 256;
    double bloom_fp_rate = 0.01;
    /// Keep a write-ahead log and support Recover(). Off by default so the
    /// paper-reproduction cost measurements are unchanged; the crash-safe
    /// deferred strategy turns it on.
    bool enable_wal = false;
    /// When set, the AD log draws its LSNs from this shared allocator so
    /// its records join the unified LSN space of the system's redo WAL
    /// (storage/wal.h). Null keeps a private sequence.
    storage::LsnAllocator* lsn_allocator = nullptr;
    /// Sync the AD log on every append (write-through, the historical
    /// behavior). False = group-commit mode: per-transaction intent/commit
    /// records buffer until SyncLog(); refresh-protocol markers still sync
    /// eagerly, because the fold protocol's crash analysis depends on their
    /// durability ordering relative to the view patches around them.
    bool log_auto_sync = true;
  };

  /// What Recover() learned from the log. Epochs are 0 when the marker is
  /// absent; markers only survive until the epoch's final Reset truncates
  /// the log, so any marker present denotes an unfinished refresh.
  struct RecoveryInfo {
    uint64_t last_epoch_begun = 0;     ///< newest kRefreshBegin
    uint64_t view_patched_epoch = 0;   ///< newest kViewPatched
    uint64_t fold_committed_epoch = 0; ///< newest kFoldCommit
    uint64_t last_committed_txn = 0;
    size_t replayed_intents = 0;       ///< committed intents re-applied
    size_t discarded_intents = 0;      ///< uncommitted tail thrown away
    bool torn_tail = false;            ///< log ended in a torn record
  };

  AdFile(storage::BufferPool* pool, db::Schema schema, size_t key_field,
         Options options);

  AdFile(const AdFile&) = delete;
  AdFile& operator=(const AdFile&) = delete;

  /// Records that `t` was appended to the hypothetical relation. Cancels an
  /// identical pending deletion if present. With the WAL enabled the intent
  /// is logged first; the change commits at the next CommitTxn.
  Status RecordInsert(const db::Tuple& t);

  /// Records that `t` was deleted. Cancels an identical pending append if
  /// present.
  Status RecordDelete(const db::Tuple& t);

  /// Commits this transaction's `intent_count` intents under `txn_id` (WAL
  /// mode; a no-op otherwise). Until this returns OK the recorded intents
  /// are an uncommitted tail that Recover() discards. The count travels in
  /// the commit record so replay adopts exactly the committing
  /// transaction's trailing intents — never stray records an earlier failed
  /// transaction left durable in the log.
  Status CommitTxn(uint64_t txn_id, uint64_t intent_count);

  /// Refresh-protocol markers (WAL mode). See DeferredStrategy::Refresh for
  /// the protocol; AdFile only journals them.
  Status LogRefreshBegin(uint64_t epoch);
  Status LogViewPatched(uint64_t epoch);
  Status LogFoldCommit(uint64_t epoch);

  /// Forces buffered log records to the device — the group-commit batch
  /// boundary when Options::log_auto_sync is false. No-op without a WAL.
  Status SyncLog();

  /// Kills volatile log state after a simulated crash+restart of the
  /// device (WriteAheadLog::DiscardVolatile): the staged-but-unsynced
  /// tail is dropped and the in-memory log image re-read from durable
  /// bytes, so a later SyncLog() cannot resurrect lost transactions.
  /// No-op without a WAL.
  Status DiscardVolatileLog() {
    return log_ != nullptr ? log_->DiscardVolatile() : Status::OK();
  }

  /// Rebuilds the hash file and Bloom filter from the log: replays every
  /// committed intent after the newest kFoldCommit, in order, with the same
  /// netting semantics as the original calls; discards uncommitted tails.
  /// Clears needs_recovery(). FailedPrecondition when the WAL is disabled.
  Status Recover(RecoveryInfo* info);

  /// True when the hash file may disagree with the committed log (a
  /// mutation failed partway) and Recover() must run before the contents
  /// are trusted.
  bool needs_recovery() const { return needs_recovery_; }

  /// Marks the file untrusted (WAL mode; no-op otherwise). Callers use this
  /// when a multi-record transaction failed partway: the already-applied
  /// intents are uncommitted and must be rolled back by Recover() before
  /// the hash file is read again.
  void MarkNeedsRecovery() {
    if (log_ != nullptr) needs_recovery_ = true;
  }

  bool wal_enabled() const { return log_ != nullptr; }
  uint64_t last_committed_txn() const { return last_committed_txn_; }
  /// Newest transaction id whose commit record is known durable — advanced
  /// at every sync point (each commit in write-through mode; SyncLog and
  /// eager marker syncs in group-commit mode). After a crash this floor,
  /// not last_committed_txn(), bounds what provably survived: commits folded
  /// into the base had durable records when the refresh-begin marker synced,
  /// so the floor also covers transactions whose records a fold-final Reset
  /// later truncated away.
  uint64_t durable_txn_floor() const { return durable_txn_floor_; }
  const AdLog* log() const { return log_.get(); }

  /// True if the Bloom filter admits the key might have AD entries. Free of
  /// I/O; false positives possible, false negatives impossible.
  bool MightContainKey(int64_t key) const {
    return bloom_.MayContain(static_cast<uint64_t>(key));
  }

  /// Visits all entries for `key` (probes the hash file: I/O charged).
  Status VisitKey(int64_t key,
                  const std::function<bool(Role, const db::Tuple&)>& visit) const;

  /// Reads the whole file (the C_ADread full scan before a refresh) and
  /// returns the net insert/delete sets.
  Status ScanNet(std::vector<db::Tuple>* a_net,
                 std::vector<db::Tuple>* d_net) const;

  /// Empties the file and the Bloom filter (after R := (R ∪ A) − D), and
  /// truncates the WAL.
  Status Reset();

  size_t entry_count() const { return hash_->entry_count(); }
  size_t page_count() const { return hash_->page_count(); }
  const storage::BloomFilter& bloom() const { return bloom_; }

  /// Test hook: forgets the in-memory hash file and Bloom filter (as a
  /// crash would), so a subsequent Recover() provably rebuilds them from
  /// the log rather than from surviving state.
  void ScrambleForTest();

 private:
  /// Payload layout: [u8 role][serialized tuple].
  std::vector<uint8_t> EncodeEntry(Role role, const db::Tuple& t) const;

  /// Removes one entry equal to (role, t); NotFound if absent.
  Status RemoveEntry(Role role, const db::Tuple& t);

  /// The netting mutation without WAL involvement (used by the public
  /// Record* paths after logging, and by replay).
  Status ApplyInsert(const db::Tuple& t);
  Status ApplyDelete(const db::Tuple& t);

  Status LogIntent(WalRecord type, const db::Tuple& t);
  Status LogMarker(WalRecord type, uint64_t value);

  storage::BufferPool* pool_;
  db::Schema schema_;
  size_t key_field_;
  Options options_;
  std::unique_ptr<storage::HashIndex> hash_;
  storage::BloomFilter bloom_;
  std::unique_ptr<AdLog> log_;
  bool needs_recovery_ = false;
  uint64_t last_committed_txn_ = 0;
  uint64_t durable_txn_floor_ = 0;
};

}  // namespace viewmat::hr

#endif  // VIEWMAT_HR_AD_FILE_H_
