#include "hr/hypothetical_relation.h"

#include <algorithm>

#include "common/logging.h"

namespace viewmat::hr {

namespace {

db::Relation* CheckedBase(db::Relation* base) {
  VIEWMAT_CHECK(base != nullptr);
  return base;
}

storage::BufferPool* PoolOf(db::Relation* base) {
  // The AD file lives on the same device as its base relation. Relation
  // does not expose its pool directly; thread it via the catalog-less path.
  return base->pool();
}

}  // namespace

HypotheticalRelation::HypotheticalRelation(db::Relation* base,
                                           AdFile::Options ad_options)
    : base_(CheckedBase(base)),
      ad_(PoolOf(base), base->schema(), base->key_field(), ad_options),
      visible_count_(base->tuple_count()) {}

Status HypotheticalRelation::RecordChanges(const db::NetChange& net) {
  for (const db::Tuple& t : net.deletes()) {
    VIEWMAT_RETURN_IF_ERROR(ad_.RecordDelete(t));
    --visible_count_;
  }
  for (const db::Tuple& t : net.inserts()) {
    VIEWMAT_RETURN_IF_ERROR(ad_.RecordInsert(t));
    ++visible_count_;
  }
  return Status::OK();
}

Status HypotheticalRelation::RecordChangesCommitted(const db::NetChange& net,
                                                    uint64_t txn_id) {
  const Status recorded = RecordChanges(net);
  if (!recorded.ok()) {
    // Some of the transaction's intents may already be applied to the hash
    // file; without a commit record they are an uncommitted tail that must
    // be rolled back before the file is read again.
    ad_.MarkNeedsRecovery();
    return recorded;
  }
  return ad_.CommitTxn(txn_id, net.deletes().size() + net.inserts().size());
}

Status HypotheticalRelation::FindAllByKey(
    int64_t key, const db::Relation::TupleVisitor& visit) const {
  std::vector<db::Tuple> pending_inserts;
  std::vector<db::Tuple> pending_deletes;
  // Bloom screen: on a negative answer the AD probe (and its I/O) is
  // skipped entirely; a false positive merely wastes the probe.
  if (ad_.MightContainKey(key)) {
    VIEWMAT_RETURN_IF_ERROR(
        ad_.VisitKey(key, [&](AdFile::Role role, const db::Tuple& t) {
          if (role == AdFile::Role::kAppended) {
            pending_inserts.push_back(t);
          } else {
            pending_deletes.push_back(t);
          }
          return true;
        }));
  }
  bool keep_going = true;
  for (const db::Tuple& t : pending_inserts) {
    if (!visit(t)) {
      keep_going = false;
      break;
    }
  }
  if (!keep_going) return Status::OK();
  return base_->FindAllByKey(key, [&](const db::Tuple& t) {
    const bool deleted = std::find(pending_deletes.begin(),
                                   pending_deletes.end(),
                                   t) != pending_deletes.end();
    if (deleted) return true;
    return visit(t);
  });
}

Status HypotheticalRelation::RangeScanByKey(
    int64_t lo, int64_t hi, const db::Relation::TupleVisitor& visit) const {
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(ad_.ScanNet(&a_net, &d_net));
  const size_t key_field = base_->key_field();
  auto in_range = [&](const db::Tuple& t) {
    const int64_t k = t.at(key_field).AsInt64();
    return k >= lo && k <= hi;
  };
  bool keep_going = true;
  VIEWMAT_RETURN_IF_ERROR(
      base_->RangeScanByKey(lo, hi, [&](const db::Tuple& t) {
        const bool deleted =
            std::find(d_net.begin(), d_net.end(), t) != d_net.end();
        if (deleted) return true;
        keep_going = visit(t);
        return keep_going;
      }));
  if (!keep_going) return Status::OK();
  for (const db::Tuple& t : a_net) {
    if (in_range(t)) {
      if (!visit(t)) break;
    }
  }
  return Status::OK();
}

Status HypotheticalRelation::NetChanges(std::vector<db::Tuple>* a_net,
                                        std::vector<db::Tuple>* d_net) const {
  a_net->clear();
  d_net->clear();
  return ad_.ScanNet(a_net, d_net);
}

Status HypotheticalRelation::Fold(std::vector<db::Tuple>* a_net,
                                  std::vector<db::Tuple>* d_net) {
  std::vector<db::Tuple> a_local;
  std::vector<db::Tuple> d_local;
  std::vector<db::Tuple>* a = a_net != nullptr ? a_net : &a_local;
  std::vector<db::Tuple>* d = d_net != nullptr ? d_net : &d_local;
  VIEWMAT_RETURN_IF_ERROR(NetChanges(a, d));
  VIEWMAT_RETURN_IF_ERROR(FoldNoReset(*a, *d, /*idempotent=*/false));
  return ad_.Reset();
}

Status HypotheticalRelation::FoldNoReset(const std::vector<db::Tuple>& a_net,
                                         const std::vector<db::Tuple>& d_net,
                                         bool idempotent) {
  // R := (R ∪ A) − D: deletions first so a delete+reinsert of the same key
  // cannot remove the fresh copy.
  for (const db::Tuple& t : d_net) {
    const Status st = base_->DeleteExact(t);
    if (idempotent && st.code() == StatusCode::kNotFound) continue;
    VIEWMAT_RETURN_IF_ERROR(st);
  }
  for (const db::Tuple& t : a_net) {
    if (idempotent) {
      // Skip tuples an earlier partial fold already landed.
      bool present = false;
      VIEWMAT_RETURN_IF_ERROR(base_->FindAllByKey(
          t.at(base_->key_field()).AsInt64(), [&](const db::Tuple& existing) {
            present = existing == t;
            return !present;
          }));
      if (present) continue;
    }
    VIEWMAT_RETURN_IF_ERROR(base_->Insert(t));
  }
  return Status::OK();
}

Status HypotheticalRelation::Recover(AdFile::RecoveryInfo* info) {
  VIEWMAT_RETURN_IF_ERROR(ad_.Recover(info));
  std::vector<db::Tuple> a_net;
  std::vector<db::Tuple> d_net;
  VIEWMAT_RETURN_IF_ERROR(ad_.ScanNet(&a_net, &d_net));
  visible_count_ = base_->tuple_count() + a_net.size() - d_net.size();
  return Status::OK();
}

}  // namespace viewmat::hr
