#ifndef VIEWMAT_DB_TUPLE_H_
#define VIEWMAT_DB_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace viewmat::db {

/// A row: an ordered list of values conforming to some Schema. Tuples do
/// not carry their schema — callers pass it where (de)serialization or
/// field typing is needed, which keeps tuples small and copyable.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Serializes to exactly schema.record_size() bytes at `out`.
  void Serialize(const Schema& schema, uint8_t* out) const;

  /// Parses a record serialized with `schema`.
  static Tuple Deserialize(const Schema& schema, const uint8_t* in);

  /// The tuple restricted to the given field indices, in that order.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Concatenation (join results).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Stable 64-bit hash over all values (order-sensitive).
  uint64_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  /// Lexicographic order; only meaningful for same-schema tuples.
  friend bool operator<(const Tuple& a, const Tuple& b);

 private:
  std::vector<Value> values_;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_TUPLE_H_
