#ifndef VIEWMAT_DB_VALUE_H_
#define VIEWMAT_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace viewmat::db {

/// Column types. Every type serializes to a fixed width (int64/double: 8
/// bytes; strings: the width declared in the schema, zero padded), which
/// keeps records fixed-size — the layout the paper's S-bytes-per-tuple
/// model assumes.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

/// A typed column value.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }

  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: int64 and double both convert; strings are an error.
  double Numeric() const;

  /// Three-way comparison; both values must have the same type.
  int Compare(const Value& other) const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

  /// Stable 64-bit hash (used by Bloom filters and duplicate detection).
  uint64_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_VALUE_H_
