#ifndef VIEWMAT_DB_PREDICATE_H_
#define VIEWMAT_DB_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/schema.h"
#include "db/tuple.h"
#include "db/value.h"

namespace viewmat::db {

/// A closed interval over int64 key values with optional bounds. Used both
/// for t-lock rule indexing (the index interval a view predicate covers,
/// §1) and for choosing clustered-scan ranges in query modification.
struct Interval {
  std::optional<int64_t> lo;  ///< nullopt = unbounded below
  std::optional<int64_t> hi;  ///< nullopt = unbounded above

  bool Contains(int64_t v) const {
    return (!lo || v >= *lo) && (!hi || v <= *hi);
  }
  bool Unbounded() const { return !lo && !hi; }

  /// Intersection (for AND) and convex hull (for OR — conservative).
  static Interval Intersect(const Interval& a, const Interval& b);
  static Interval Hull(const Interval& a, const Interval& b);
};

/// A normalized union of disjoint, sorted, closed intervals. The faithful
/// form of rule indexing: the paper locks "the index intervals covered by
/// one or more clauses of the view predicate" — a set, not a single hull.
/// Exact for arbitrary AND/OR/NOT combinations over one field.
class IntervalSet {
 public:
  /// The empty set (an always-false predicate).
  IntervalSet() = default;
  /// A single interval (normalizing the unbounded/empty cases).
  explicit IntervalSet(const Interval& interval);

  static IntervalSet All() { return IntervalSet(Interval{}); }
  static IntervalSet Empty() { return IntervalSet(); }

  bool Contains(int64_t v) const;
  bool empty() const { return intervals_.empty(); }
  bool IsAll() const;
  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Exact set algebra (union/intersection/complement over int64).
  static IntervalSet Union(const IntervalSet& a, const IntervalSet& b);
  static IntervalSet Intersect(const IntervalSet& a, const IntervalSet& b);
  static IntervalSet Complement(const IntervalSet& a);

  /// The convex hull (what the single-interval screen used).
  Interval Hull() const;

 private:
  void Normalize();

  std::vector<Interval> intervals_;  ///< disjoint, ascending
};

class Predicate;
using PredicateRef = std::shared_ptr<const Predicate>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Immutable boolean expression tree over the fields of a single relation's
/// tuple: comparisons against constants combined with AND/OR/NOT. Supports
/// - evaluation against a tuple (the stage-2 screening substitution test:
///   substituting a tuple into the predicate and checking satisfiability
///   reduces to evaluation when, as here, predicates reference one relation);
/// - extraction of the interval the predicate implies on a chosen field
///   (the t-lock interval for stage-1 screening).
class Predicate {
 public:
  /// Always-true predicate (a view over the whole relation, f = 1).
  static PredicateRef True();
  /// field <op> constant.
  static PredicateRef Compare(size_t field, CompareOp op, Value constant);
  /// Convenience: lo <= field <= hi.
  static PredicateRef Between(size_t field, int64_t lo, int64_t hi);
  static PredicateRef And(PredicateRef a, PredicateRef b);
  static PredicateRef Or(PredicateRef a, PredicateRef b);
  static PredicateRef Not(PredicateRef a);

  /// True when the tuple satisfies the predicate.
  bool Evaluate(const Tuple& tuple) const;

  /// The tightest interval I (possibly unbounded) such that every
  /// satisfying tuple has its `field` value inside I. Conservative: may be
  /// wider than optimal (e.g. OR takes the hull), never narrower — exactly
  /// the guarantee t-lock screening needs (no false negatives; false drops
  /// are filtered by stage 2). Only int64 comparisons contribute bounds.
  Interval ImpliedRange(size_t field) const;

  /// The exact set of `field` values that can satisfy the predicate,
  /// treating comparisons on other fields as unconstrained (satisfiable).
  /// Strictly tighter than ImpliedRange: OR keeps disjoint pieces apart
  /// and NOT complements exactly, so t-locks built from this set produce
  /// no single-field false drops. When the predicate references only
  /// `field`, membership is equivalent to satisfiability — the substitution
  /// test of stage 2.
  IntervalSet ImpliedRangeSet(size_t field) const;

  std::string ToString(const Schema* schema = nullptr) const;

  /// True when the predicate's truth value depends only on int64
  /// comparisons against `field` — the precondition for exact complement
  /// analysis in ImpliedRangeSet.
  bool AnalyzableOn(size_t field) const;

 private:
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  // kCompare:
  size_t field_ = 0;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  // kAnd/kOr/kNot:
  std::vector<PredicateRef> children_;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_PREDICATE_H_
