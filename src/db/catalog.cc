#include "db/catalog.h"

namespace viewmat::db {

StatusOr<Relation*> Catalog::CreateRelation(const std::string& name,
                                            Schema schema,
                                            AccessMethod method,
                                            size_t key_field,
                                            Relation::Options options) {
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  auto rel = std::make_unique<Relation>(pool_, name, std::move(schema),
                                        method, key_field, options);
  Relation* raw = rel.get();
  relations_.emplace(name, std::move(rel));
  return raw;
}

StatusOr<Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named " + name);
  }
  return Status::OK();
}

}  // namespace viewmat::db
