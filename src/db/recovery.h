#ifndef VIEWMAT_DB_RECOVERY_H_
#define VIEWMAT_DB_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "db/transaction.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace viewmat::db {

/// What one Recover() pass did (observability and test assertions).
struct RecoverStats {
  size_t txns_replayed = 0;  ///< committed transactions redone
  size_t ops_replayed = 0;   ///< tuple writes actually re-applied
  size_t ops_skipped = 0;    ///< tuple writes already present (idempotence)
  bool torn_tail = false;    ///< log ended in a torn record
  uint64_t committed_high = 0;  ///< newest committed transaction id
};

/// ARIES-lite redo-only recovery over a unified write-ahead log.
///
/// Protocol (log-commit-then-apply): CommitAndApply first appends the
/// transaction's full net A/D set plus a commit record to the WAL and syncs
/// — only then does it touch base relation pages. Because no page is
/// written before its transaction is durably committed, base relations can
/// never hold uncommitted data, so recovery needs no undo: after any crash
/// the base state is "some committed prefix, plus a partially-applied
/// suffix of committed transactions", and idempotent in-order redo of every
/// committed transaction converges it to the full committed state.
///
/// Recovery is analysis + redo:
///  - analysis scans the log, grouping intent records under the commit
///    record that covers them (a commit adopts the `count` intents
///    immediately preceding it); intents never covered by a commit — the
///    torn tail of a crashed transaction — are discarded;
///  - redo replays each committed transaction in log order. Replay is
///    idempotent: a delete whose tuple is already gone is skipped, an
///    insert whose exact tuple is already present is skipped. Transient
///    duplicates from partially-applied update chains are tolerated (the
///    clustered B+-tree supports duplicate keys) and consumed by the
///    remaining redo.
///
/// Checkpointing flushes all dirty pages, then atomically truncates the
/// log down to a single checkpoint record carrying the committed high-water
/// mark (WriteAheadLog::TruncateWithRecord — the old log survives any
/// failure before the head write lands).
///
/// The manager also arms the buffer pool's WAL rule: it attaches its log to
/// the pool and stamps pages dirtied during apply/redo with the governing
/// commit record's LSN, so a page image can never reach the device ahead of
/// the log records that justify it.
class RecoveryManager {
 public:
  /// Record types in the unified transaction log. The session records are
  /// owned by the net layer's exactly-once protocol (see
  /// net::SessionServer): recovery's analysis/redo skips them as opaque —
  /// they ride in this log only so a commit's durability covers the stamp
  /// that precedes it (prefix durability) and so checkpoint truncation
  /// cannot separate the dedup table from the commit history it summarizes.
  enum RecordType : uint8_t {
    kTxnInsert = 1,  ///< [u32 rel_idx][serialized tuple]
    kTxnDelete = 2,  ///< [u32 rel_idx][serialized tuple]
    kTxnCommit = 3,  ///< [u64 txn_id][u64 count of preceding intents]
    kCheckpoint = 4,  ///< [u64 committed high-water mark]
    kSessionStamp = 5,  ///< net-layer: pre-commit (session, seq, txn) stamp
    kSessionTable = 6,  ///< net-layer: dedup-table snapshot at a checkpoint
    kSessionAbort = 7,  ///< net-layer: txn id durably drawn but never
                        ///< committed — stamps naming it are dead forever
  };

  struct Options {
    /// Checkpoint automatically after every N successful commits (0 = only
    /// on explicit Checkpoint() calls).
    size_t checkpoint_every = 0;
    /// Shared LSN space (e.g. with an AD file's log); the manager's WAL
    /// owns a private allocator when null.
    storage::LsnAllocator* lsn_allocator = nullptr;
    /// Sync the WAL inside every CommitAndApply (the classical one-sync-per-
    /// commit protocol). When false the commit record is only buffered and
    /// the caller owns durability: it must call SyncWal() at group-commit
    /// batch boundaries, and until then the commit may be lost by a crash
    /// (Recover() will simply not see it — the log-commit-then-apply
    /// invariant still holds provided volatile page state is discarded, see
    /// BufferPool::DiscardAll).
    bool sync_on_commit = true;
  };

  /// Builds the unified WAL on `pool`'s disk (buffered mode — one device
  /// sync per commit) and attaches it to the pool for WAL-rule enforcement.
  RecoveryManager(storage::BufferPool* pool, Options options);
  explicit RecoveryManager(storage::BufferPool* pool)
      : RecoveryManager(pool, Options()) {}

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Registers a base relation for logging and redo. Registration order
  /// defines the relation index stored in log records, so it must be
  /// deterministic across restarts (same relations, same order).
  /// Returns the relation's index.
  uint32_t Register(Relation* rel);

  /// Atomically commits and applies `txn`: logs its full net A/D set and a
  /// commit record, syncs the log, then applies the changes to the base
  /// relations. On success `out_txn_id` (if non-null) receives the
  /// transaction's id and the transaction is durable — a later crash plus
  /// Recover() always re-establishes it. On a log-sync failure nothing was
  /// applied; whether the commit became durable anyway is resolved by
  /// Recover() (committed_high >= the id reported through `out_txn_id`,
  /// which is filled even on failure). On an apply failure the commit IS
  /// durable and needs_recovery() turns true; Recover() completes it.
  Status CommitAndApply(const Transaction& txn, uint64_t* out_txn_id = nullptr);

  /// Analysis + redo, as described above. Safe to call any time (a no-op
  /// pass on a clean log) and idempotent: Recover() twice ≡ once.
  Status Recover(RecoverStats* stats = nullptr);

  /// Forces every buffered log record to the device. The group-commit batch
  /// boundary when Options::sync_on_commit is false; a cheap no-op sync
  /// otherwise.
  Status SyncWal() { return wal_.Sync(); }

  /// Kills volatile log state after a simulated crash+restart of the
  /// device (see WriteAheadLog::DiscardVolatile). Must run before the
  /// first post-crash SyncWal(), or the stale staged tail would become
  /// durable and resurrect transactions the crash lost.
  Status DiscardVolatileWal() { return wal_.DiscardVolatile(); }

  /// One opaque extra record a caller can ride on a checkpoint (see the
  /// Checkpoint overload below). `type` should be one of the session
  /// record types — recovery itself never interprets the payload.
  struct ExtraRecord {
    uint8_t type = 0;
    std::vector<uint8_t> payload;
  };

  /// Flushes all dirty pages, then truncates the log to one checkpoint
  /// record. After a checkpoint, recovery starts from the checkpoint's
  /// committed high-water mark.
  Status Checkpoint();

  /// Checkpoint with extra opaque records planted in the same atomic
  /// head-page write as the checkpoint record (the net layer's dedup-table
  /// snapshot rides here): either the checkpoint and every extra survive
  /// together, or the old log stays intact. Extras appear after the
  /// checkpoint record in scan order.
  Status Checkpoint(const std::vector<ExtraRecord>& extras);

  /// True after a failed apply: base relations may hold a partially-applied
  /// committed transaction until Recover() runs.
  bool needs_recovery() const { return needs_recovery_; }

  /// Newest transaction id known committed (durable). Monotonic; survives
  /// checkpoints via the checkpoint record and an in-memory floor.
  uint64_t last_committed_txn() const { return last_committed_txn_; }

  /// Transaction ids issued so far. CommitAndApply draws an id before any
  /// logging, so an attempt whose outcome is ambiguous (sync error with a
  /// failed read-back probe) can be resolved after Recover(): it committed
  /// iff its id is <= last_committed_txn().
  uint64_t txn_seq() const { return txn_seq_; }

  /// Recover() passes completed (observability).
  uint64_t recoveries() const { return recoveries_; }
  /// Checkpoints taken (observability).
  uint64_t checkpoints() const { return checkpoints_; }

  /// Opts recovery/checkpoint work into a metrics registry (may be null to
  /// opt back out). Recover() bumps `recovery_runs_total`,
  /// `recovery_txns_replayed_total`, `recovery_ops_replayed_total`,
  /// `recovery_ops_skipped_total`, and `recovery_torn_tails_total`;
  /// Checkpoint() bumps `checkpoints_total` and observes the log size it
  /// retired (`checkpoint_log_records`) and its age in commits
  /// (`checkpoint_age_commits`). Both also record `recover.wal_analysis` /
  /// `recover.wal_redo` spans when the disk's CostTracker has a tracer.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  storage::WriteAheadLog* wal() { return &wal_; }
  const storage::WriteAheadLog* wal() const { return &wal_; }

 private:
  /// One logged tuple write, decoded.
  struct RedoOp {
    bool is_insert = false;
    uint32_t rel_idx = 0;
    Tuple tuple;
  };

  Status AppendIntent(uint8_t type, uint32_t rel_idx, const Relation& rel,
                      const Tuple& t);
  /// Applies one decoded op idempotently.
  Status RedoOne(const RedoOp& op, RecoverStats* stats);

  storage::BufferPool* pool_;
  Options options_;
  storage::WriteAheadLog wal_;
  std::vector<Relation*> relations_;
  uint64_t txn_seq_ = 0;
  uint64_t last_committed_txn_ = 0;
  uint64_t commits_since_checkpoint_ = 0;
  bool needs_recovery_ = false;
  uint64_t recoveries_ = 0;
  uint64_t checkpoints_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_RECOVERY_H_
