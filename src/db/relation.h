#ifndef VIEWMAT_DB_RELATION_H_
#define VIEWMAT_DB_RELATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/hash_index.h"
#include "storage/heap_file.h"

namespace viewmat::db {

/// Physical organization of a stored relation — the three access methods
/// the paper's analysis assumes (§3.1).
enum class AccessMethod {
  kClusteredBTree,  ///< clustered B+-tree on the key field (R, R1, V)
  kClusteredHash,   ///< clustered hashing on the key field (R2, AD)
  kHeap,            ///< unordered; paired with an unclustered key index
};

/// A stored relation: a schema bound to an access method over the buffer
/// pool. The "key field" is the clustering attribute (predicate field for
/// B+-trees, join/hash field for hash relations) and must be int64. Keys
/// need not be unique.
///
/// Heap relations keep an in-memory multimap from key to RID standing in
/// for an unclustered secondary index; its traversal is not charged,
/// matching TOTAL_unclustered which charges only the y(N, b, ...) data-page
/// fetches.
class Relation {
 public:
  using TupleVisitor = std::function<bool(const Tuple&)>;

  struct Options {
    /// Bucket count for kClusteredHash; 0 sizes it for `expected_tuples`.
    uint32_t hash_buckets = 0;
    /// Used to size hashing when hash_buckets == 0.
    size_t expected_tuples = 1024;
  };

  Relation(storage::BufferPool* pool, std::string name, Schema schema,
           AccessMethod method, size_t key_field, Options options);
  Relation(storage::BufferPool* pool, std::string name, Schema schema,
           AccessMethod method, size_t key_field)
      : Relation(pool, std::move(name), std::move(schema), method, key_field,
                 Options()) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  storage::BufferPool* pool() const { return pool_; }
  const Schema& schema() const { return schema_; }
  AccessMethod method() const { return method_; }
  size_t key_field() const { return key_field_; }
  size_t tuple_count() const { return tuple_count_; }

  /// The clustering key of a tuple under this relation's schema.
  int64_t KeyOf(const Tuple& t) const;

  Status Insert(const Tuple& t);

  /// Bulk-loads a B+-tree relation from a key-sorted tuple stream, packing
  /// pages completely (the layout the paper's formulas assume). The
  /// relation must be empty and clustered by B+-tree. `source` returns
  /// false when exhausted.
  Status BulkLoadSorted(const std::function<bool(Tuple*)>& source);

  /// Rebuilds a B+-tree relation into packed pages, reclaiming empty
  /// leaves left by deletions (offline vacuum).
  Status Compact();

  /// Deletes one stored tuple equal to `t` (all fields). NotFound if absent.
  Status DeleteExact(const Tuple& t);

  /// Replaces one stored tuple equal to `old_t` with `new_t`. When the key
  /// is unchanged this is an in-place payload update (1 logical read +
  /// write); otherwise a delete + insert.
  Status UpdateExact(const Tuple& old_t, const Tuple& new_t);

  /// First tuple with the key, or NotFound.
  Status FindByKey(int64_t key, Tuple* out) const;

  /// All tuples with the key (duplicates included).
  Status FindAllByKey(int64_t key, const TupleVisitor& visit) const;

  /// Every tuple, in the access method's natural order.
  Status Scan(const TupleVisitor& visit) const;

  /// Tuples with key in [lo, hi]. B+-tree: clustered leaf scan in key
  /// order. Heap: unclustered scan through the secondary index (random data
  /// page fetches). Hash: InvalidArgument — hashing cannot serve ranges.
  Status RangeScanByKey(int64_t lo, int64_t hi, const TupleVisitor& visit) const;

  /// Pages occupied by data (for experiment reporting).
  size_t data_page_count() const;

 private:
  Status HeapDeleteWhere(int64_t key,
                         const std::function<bool(const Tuple&)>& pred);

  storage::BufferPool* pool_;
  std::string name_;
  Schema schema_;
  AccessMethod method_;
  size_t key_field_;
  size_t tuple_count_ = 0;

  // Exactly one of these is active, per method_.
  std::unique_ptr<storage::BPTree> btree_;
  std::unique_ptr<storage::HashIndex> hash_;
  std::unique_ptr<storage::HeapFile> heap_;
  std::multimap<int64_t, storage::Rid> heap_key_index_;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_RELATION_H_
