#include "db/tuple.h"

#include <cstring>

#include "common/logging.h"

namespace viewmat::db {

void Tuple::Serialize(const Schema& schema, uint8_t* out) const {
  VIEWMAT_CHECK_MSG(values_.size() == schema.field_count(),
                    "tuple arity does not match schema");
  for (size_t i = 0; i < values_.size(); ++i) {
    const Field& f = schema.field(i);
    const Value& v = values_[i];
    VIEWMAT_CHECK_MSG(v.type() == f.type, "value type does not match schema");
    uint8_t* dst = out + schema.offset(i);
    switch (f.type) {
      case ValueType::kInt64: {
        const int64_t x = v.AsInt64();
        std::memcpy(dst, &x, 8);
        break;
      }
      case ValueType::kDouble: {
        const double x = v.AsDouble();
        std::memcpy(dst, &x, 8);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        const size_t n = std::min<size_t>(s.size(), f.width);
        std::memcpy(dst, s.data(), n);
        if (n < f.width) std::memset(dst + n, 0, f.width - n);
        break;
      }
    }
  }
}

Tuple Tuple::Deserialize(const Schema& schema, const uint8_t* in) {
  std::vector<Value> values;
  values.reserve(schema.field_count());
  for (size_t i = 0; i < schema.field_count(); ++i) {
    const Field& f = schema.field(i);
    const uint8_t* src = in + schema.offset(i);
    switch (f.type) {
      case ValueType::kInt64: {
        int64_t x;
        std::memcpy(&x, src, 8);
        values.emplace_back(x);
        break;
      }
      case ValueType::kDouble: {
        double x;
        std::memcpy(&x, src, 8);
        values.emplace_back(x);
        break;
      }
      case ValueType::kString: {
        // Stored zero-padded; trim at the first NUL.
        size_t len = 0;
        while (len < f.width && src[len] != 0) ++len;
        values.emplace_back(
            std::string(reinterpret_cast<const char*>(src), len));
        break;
      }
    }
  }
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (const size_t i : indices) {
    VIEWMAT_CHECK(i < values_.size());
    out.push_back(values_[i]);
  }
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.values_.begin(), left.values_.end());
  out.insert(out.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(out));
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool operator<(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.values_.size(), b.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a.values_[i].Compare(b.values_[i]);
    if (c != 0) return c < 0;
  }
  return a.values_.size() < b.values_.size();
}

}  // namespace viewmat::db
