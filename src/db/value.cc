#include "db/value.h"

#include <cstdio>

#include "common/logging.h"

namespace viewmat::db {

double Value::Numeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      break;
  }
  VIEWMAT_CHECK_MSG(false, "Numeric() on a string value");
  return 0.0;
}

int Value::Compare(const Value& other) const {
  VIEWMAT_CHECK_MSG(type() == other.type(), "comparing mismatched types");
  switch (type()) {
    case ValueType::kInt64: {
      const int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  char buf[32];
  switch (type()) {
    case ValueType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(AsInt64()));
      return buf;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  switch (type()) {
    case ValueType::kInt64:
      return mix(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      uint64_t bits;
      const double d = AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return mix(bits ^ 0x5851f42d4c957f2dULL);
    }
    case ValueType::kString: {
      // FNV-1a, then mixed.
      uint64_t h = 0xcbf29ce484222325ULL;
      for (const char c : AsString()) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
      }
      return mix(h);
    }
  }
  return 0;
}

}  // namespace viewmat::db
