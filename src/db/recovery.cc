#include "db/recovery.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "storage/cost_tracker.h"

namespace viewmat::db {

namespace {

storage::WriteAheadLog::Options WalOptions(
    const RecoveryManager::Options& options) {
  storage::WriteAheadLog::Options wal_options;
  wal_options.auto_sync = false;  // group commit: one sync per transaction
  wal_options.lsn_allocator = options.lsn_allocator;
  wal_options.component = storage::Component::kWal;
  return wal_options;
}

}  // namespace

RecoveryManager::RecoveryManager(storage::BufferPool* pool, Options options)
    : pool_(pool), options_(options), wal_(pool->disk(), WalOptions(options)) {
  pool_->AttachWal(&wal_);
}

uint32_t RecoveryManager::Register(Relation* rel) {
  VIEWMAT_CHECK(rel != nullptr);
  relations_.push_back(rel);
  return static_cast<uint32_t>(relations_.size() - 1);
}

Status RecoveryManager::AppendIntent(uint8_t type, uint32_t rel_idx,
                                     const Relation& rel, const Tuple& t) {
  const uint32_t record_size = rel.schema().record_size();
  std::vector<uint8_t> payload(sizeof(uint32_t) + record_size);
  std::memcpy(payload.data(), &rel_idx, sizeof(uint32_t));
  t.Serialize(rel.schema(), payload.data() + sizeof(uint32_t));
  if (payload.size() > wal_.max_payload()) {
    return Status::InvalidArgument(
        "tuple of relation '" + rel.name() + "' (" +
        std::to_string(payload.size()) + " bytes) exceeds the WAL record "
        "payload limit (" + std::to_string(wal_.max_payload()) + ")");
  }
  return wal_.Append(type, payload.data(),
                     static_cast<uint16_t>(payload.size()));
}

Status RecoveryManager::CommitAndApply(const Transaction& txn,
                                       uint64_t* out_txn_id) {
  if (needs_recovery_) {
    return Status::FailedPrecondition(
        "base relations hold a partially-applied transaction; run Recover() "
        "before committing new work");
  }
  const uint64_t txn_id = ++txn_seq_;
  if (out_txn_id != nullptr) *out_txn_id = txn_id;

  // Phase 1: stage the full net A/D set, in the exact order ApplyToBase
  // walks it, so redo replays the same write sequence.
  uint64_t count = 0;
  for (const auto& [rel, nc] : txn.changes()) {
    uint32_t rel_idx = 0;
    bool found = false;
    for (size_t i = 0; i < relations_.size(); ++i) {
      if (relations_[i] == rel) {
        rel_idx = static_cast<uint32_t>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("transaction touches relation '" +
                                     rel->name() +
                                     "' which is not registered for recovery");
    }
    for (const Tuple& t : nc.deletes()) {
      VIEWMAT_RETURN_IF_ERROR(AppendIntent(kTxnDelete, rel_idx, *rel, t));
      ++count;
    }
    for (const Tuple& t : nc.inserts()) {
      VIEWMAT_RETURN_IF_ERROR(AppendIntent(kTxnInsert, rel_idx, *rel, t));
      ++count;
    }
  }

  // Phase 2: commit record + one sync makes the whole transaction durable.
  uint8_t commit_payload[sizeof(uint64_t) * 2];
  std::memcpy(commit_payload, &txn_id, sizeof(uint64_t));
  std::memcpy(commit_payload + sizeof(uint64_t), &count, sizeof(uint64_t));
  storage::Lsn commit_lsn = 0;
  VIEWMAT_RETURN_IF_ERROR(wal_.Append(kTxnCommit, commit_payload,
                                      sizeof(commit_payload), &commit_lsn));
  // A sync failure means the commit did not (knowably) reach the device:
  // nothing has touched base pages, so the failure is clean. When the
  // read-back probe also failed the commit's fate is ambiguous — the caller
  // resolves it by running Recover() and checking last_committed_txn()
  // against the id reported through `out_txn_id`. Under group commit the
  // sync is deferred to the caller's SyncWal(); last_committed_txn_ then
  // means "committed if the batch sync lands", and the durable high-water
  // is what Recover() reports.
  if (options_.sync_on_commit) {
    VIEWMAT_RETURN_IF_ERROR(wal_.Sync());
  }
  last_committed_txn_ = txn_id;

  // Phase 3: apply. Pages dirtied from here carry the commit LSN, so the
  // buffer pool cannot write them back ahead of the log (the sync above
  // already made that a no-op, but the stamp keeps the rule auditable).
  pool_->SetStampLsn(commit_lsn);
  Status applied = txn.ApplyToBase();
  if (!applied.ok()) {
    // The commit is durable but the base holds a partial application;
    // Recover() completes it.
    needs_recovery_ = true;
    return applied;
  }

  ++commits_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every) {
    // Best-effort: a failed checkpoint leaves either the old log or an
    // empty-but-checkpointed log, both recoverable; surface the error so
    // the caller knows durability work was left pending.
    VIEWMAT_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status RecoveryManager::RedoOne(const RedoOp& op, RecoverStats* stats) {
  Relation* rel = relations_[op.rel_idx];
  if (op.is_insert) {
    // Idempotent insert: skip when the exact tuple is already stored.
    bool present = false;
    VIEWMAT_RETURN_IF_ERROR(
        rel->FindAllByKey(rel->KeyOf(op.tuple), [&](const Tuple& existing) {
          if (existing == op.tuple) {
            present = true;
            return false;
          }
          return true;
        }));
    if (present) {
      if (stats != nullptr) ++stats->ops_skipped;
      return Status::OK();
    }
    if (stats != nullptr) ++stats->ops_replayed;
    return rel->Insert(op.tuple);
  }
  // Idempotent delete: the tuple being already gone is success.
  Status st = rel->DeleteExact(op.tuple);
  if (st.code() == StatusCode::kNotFound) {
    if (stats != nullptr) ++stats->ops_skipped;
    return Status::OK();
  }
  if (st.ok() && stats != nullptr) ++stats->ops_replayed;
  return st;
}

Status RecoveryManager::Recover(RecoverStats* stats) {
  RecoverStats local;
  RecoverStats* out = stats != nullptr ? stats : &local;
  *out = RecoverStats();
  obs::Tracer* tracer = storage::TracerOf(pool_->disk()->tracker());
  const obs::ScopedSpan recover_span(tracer, "recover");

  // Analysis: group intents under the commits that cover them.
  struct CommittedTxn {
    uint64_t id = 0;
    storage::Lsn commit_lsn = 0;
    std::vector<RedoOp> ops;
  };
  std::vector<CommittedTxn> committed;
  std::vector<RedoOp> staged;  // intents not yet covered by a commit
  uint64_t checkpoint_floor = 0;
  Status decode = Status::OK();
  bool torn = false;
  obs::ScopedSpan analysis_span(tracer, "recover.wal_analysis");
  Status scanned = wal_.ScanWithLsn(
      [&](storage::Lsn lsn, uint8_t type, const uint8_t* payload,
          uint16_t len) {
        switch (type) {
          case kTxnInsert:
          case kTxnDelete: {
            if (len < sizeof(uint32_t)) {
              decode = Status::Internal("WAL intent record too short");
              return false;
            }
            RedoOp op;
            op.is_insert = (type == kTxnInsert);
            std::memcpy(&op.rel_idx, payload, sizeof(uint32_t));
            if (op.rel_idx >= relations_.size()) {
              decode = Status::Internal(
                  "WAL intent names relation index " +
                  std::to_string(op.rel_idx) + " but only " +
                  std::to_string(relations_.size()) + " are registered");
              return false;
            }
            const Schema& schema = relations_[op.rel_idx]->schema();
            if (len != sizeof(uint32_t) + schema.record_size()) {
              decode = Status::Internal("WAL intent payload size mismatch");
              return false;
            }
            op.tuple = Tuple::Deserialize(schema, payload + sizeof(uint32_t));
            staged.push_back(std::move(op));
            return true;
          }
          case kTxnCommit: {
            if (len != sizeof(uint64_t) * 2) {
              decode = Status::Internal("WAL commit payload size mismatch");
              return false;
            }
            CommittedTxn txn;
            std::memcpy(&txn.id, payload, sizeof(uint64_t));
            uint64_t count = 0;
            std::memcpy(&count, payload + sizeof(uint64_t), sizeof(uint64_t));
            if (count > staged.size()) {
              decode = Status::Internal(
                  "WAL commit covers " + std::to_string(count) +
                  " intents but only " + std::to_string(staged.size()) +
                  " are staged");
              return false;
            }
            txn.commit_lsn = lsn;
            // Adopt exactly the committing transaction's trailing `count`
            // intents. Anything staged before them is the durable residue
            // of a transaction that failed mid-logging and never committed
            // — discarded, same as AdFile's replay rule.
            txn.ops.assign(
                std::make_move_iterator(staged.end() - count),
                std::make_move_iterator(staged.end()));
            staged.clear();
            committed.push_back(std::move(txn));
            return true;
          }
          case kCheckpoint: {
            if (len != sizeof(uint64_t)) {
              decode = Status::Internal("WAL checkpoint payload size mismatch");
              return false;
            }
            std::memcpy(&checkpoint_floor, payload, sizeof(uint64_t));
            return true;
          }
          case kSessionStamp:
          case kSessionTable:
          case kSessionAbort:
            // Net-layer session records are opaque to recovery: they never
            // carry redo work and must not disturb the staged-intent
            // grouping (a stamp is appended BEFORE its transaction's
            // intents, so skipping it leaves commit adoption intact). The
            // net layer scans for them itself (SessionServer::
            // RebuildSessions).
            return true;
          default:
            decode = Status::Internal("unknown WAL record type " +
                                      std::to_string(type));
            return false;
        }
      },
      &torn);
  analysis_span.End();
  VIEWMAT_RETURN_IF_ERROR(scanned);
  VIEWMAT_RETURN_IF_ERROR(decode);
  out->torn_tail = torn;
  // `staged` now holds the torn tail of a never-committed transaction (if
  // any); it is deliberately dropped — nothing of it touched base pages.

  // Redo, in log order. Every replayed record is already durable, so page
  // stamps stay at or below the log's durable LSN and write-back is free.
  obs::ScopedSpan redo_span(tracer, "recover.wal_redo");
  for (const CommittedTxn& txn : committed) {
    pool_->SetStampLsn(txn.commit_lsn);
    for (const RedoOp& op : txn.ops) {
      VIEWMAT_RETURN_IF_ERROR(RedoOne(op, out));
    }
    ++out->txns_replayed;
  }
  redo_span.End();

  // The committed high-water mark survives three ways: the in-memory floor
  // (this process issued the commits), the checkpoint record, and the
  // newest commit record scanned. Max of all three covers every crash
  // interleaving, including a checkpoint whose truncate landed but whose
  // scan floor a fresh manager has never seen. Under group commit the
  // in-memory floor lies: CommitAndApply advances it before the batch sync,
  // so a crash can lose commits the floor still counts — only the durable
  // log decides then.
  uint64_t high = options_.sync_on_commit ? last_committed_txn_ : 0;
  if (checkpoint_floor > high) high = checkpoint_floor;
  if (!committed.empty() && committed.back().id > high) {
    high = committed.back().id;
  }
  last_committed_txn_ = high;
  if (txn_seq_ < high) txn_seq_ = high;
  out->committed_high = high;

  // Make the recovered state durable so a crash right after recovery does
  // not have to repeat the redo work (it could, safely — idempotence).
  VIEWMAT_RETURN_IF_ERROR(pool_->FlushAll());
  needs_recovery_ = false;
  ++recoveries_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("recovery_runs_total")->Increment();
    metrics_->GetCounter("recovery_txns_replayed_total")
        ->Increment(out->txns_replayed);
    metrics_->GetCounter("recovery_ops_replayed_total")
        ->Increment(out->ops_replayed);
    metrics_->GetCounter("recovery_ops_skipped_total")
        ->Increment(out->ops_skipped);
    if (out->torn_tail) {
      metrics_->GetCounter("recovery_torn_tails_total")->Increment();
    }
  }
  return Status::OK();
}

Status RecoveryManager::Checkpoint() { return Checkpoint({}); }

Status RecoveryManager::Checkpoint(const std::vector<ExtraRecord>& extras) {
  // Log size and age are read before the truncate discards them.
  const uint64_t retired_records = wal_.record_count();
  const uint64_t age_commits = commits_since_checkpoint_;
  // Every committed transaction's effects must be on the device before the
  // log that would redo them is discarded.
  VIEWMAT_RETURN_IF_ERROR(pool_->FlushAll());
  uint8_t payload[sizeof(uint64_t)];
  std::memcpy(payload, &last_committed_txn_, sizeof(uint64_t));
  std::vector<storage::WriteAheadLog::TruncateRecord> records;
  records.push_back({kCheckpoint, payload, sizeof(payload)});
  for (const ExtraRecord& extra : extras) {
    records.push_back({extra.type, extra.payload.data(),
                       static_cast<uint16_t>(extra.payload.size())});
  }
  VIEWMAT_RETURN_IF_ERROR(
      wal_.TruncateWithRecords(records.data(), records.size()));
  commits_since_checkpoint_ = 0;
  ++checkpoints_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("checkpoints_total")->Increment();
    metrics_
        ->GetHistogram("checkpoint_log_records", {},
                       {1, 8, 64, 512, 4096, 32768})
        ->Observe(static_cast<double>(retired_records));
    metrics_
        ->GetHistogram("checkpoint_age_commits", {}, {1, 2, 4, 8, 16, 32, 64})
        ->Observe(static_cast<double>(age_commits));
  }
  return Status::OK();
}

}  // namespace viewmat::db
