#ifndef VIEWMAT_DB_TRANSACTION_H_
#define VIEWMAT_DB_TRANSACTION_H_

#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "db/relation.h"
#include "db/tuple.h"

namespace viewmat::db {

/// Net change one transaction makes to one relation: the A_i (inserted) and
/// D_i (deleted) sets of §2.1. The class maintains the paper's invariant
/// A_i ∩ D_i = ∅ — inserting a tuple and deleting it again inside the same
/// transaction cancels out, and vice versa.
class NetChange {
 public:
  void AddInsert(const Tuple& t);
  void AddDelete(const Tuple& t);

  const std::vector<Tuple>& inserts() const { return inserts_; }
  const std::vector<Tuple>& deletes() const { return deletes_; }
  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  size_t size() const { return inserts_.size() + deletes_.size(); }

 private:
  std::vector<Tuple> inserts_;
  std::vector<Tuple> deletes_;
};

/// Lifecycle of a transaction as the server layer sees it: a transaction is
/// built open, optionally acquires locks and applies, and ends exactly once
/// as committed or aborted. Serial callers that never call MarkCommitted()
/// or Abort() keep the old build-then-apply behavior (state stays kOpen).
enum class TxnState {
  kOpen,       // accepting mutations (begin/acquire/apply)
  kCommitted,  // net changes durably applied; immutable from here on
  kAborted,    // undone before apply; net sets cleared, immutable
};

const char* TxnStateName(TxnState s);

/// A single update transaction: a batch of inserts, deletes, and updates
/// against base relations, recorded as net A/D sets per relation. The
/// transaction is a pure description — the chosen maintenance engine decides
/// how it is applied (directly, or through a hypothetical relation).
class Transaction {
 public:
  void Insert(Relation* rel, const Tuple& t);
  void Delete(Relation* rel, const Tuple& t);
  /// Update = delete old + insert new (the paper's HR modification rule).
  void Update(Relation* rel, const Tuple& old_t, const Tuple& new_t);

  /// --- Lifecycle -------------------------------------------------------
  /// Transactions begin open; mutators DCHECK the open state. Commit and
  /// abort are terminal and one-shot. Abort undoes the not-yet-applied net
  /// changes by clearing them, so an aborted transaction applied through
  /// any engine is a guaranteed no-op.
  TxnState state() const { return state_; }
  void MarkCommitted() {
    VIEWMAT_DCHECK(state_ == TxnState::kOpen);
    state_ = TxnState::kCommitted;
  }
  void Abort() {
    VIEWMAT_DCHECK(state_ == TxnState::kOpen);
    changes_.clear();
    state_ = TxnState::kAborted;
  }

  const std::map<Relation*, NetChange>& changes() const { return changes_; }

  /// The net change for one relation (empty if untouched).
  const NetChange& ChangesFor(Relation* rel) const;

  /// Total tuples written (the paper's per-transaction l).
  size_t tuples_written() const;

  /// Applies all changes directly to the base relations: deletes first,
  /// then inserts. Used by strategies that do not interpose a hypothetical
  /// relation (query modification, immediate maintenance).
  Status ApplyToBase() const;

 private:
  std::map<Relation*, NetChange> changes_;
  TxnState state_ = TxnState::kOpen;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_TRANSACTION_H_
