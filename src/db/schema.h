#ifndef VIEWMAT_DB_SCHEMA_H_
#define VIEWMAT_DB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace viewmat::db {

/// One column: name, type, and serialized width in bytes. Numeric columns
/// always occupy 8 bytes; string columns take the declared width (padding
/// or truncating at serialization time).
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;
  uint32_t width = 8;

  static Field Int64(std::string name) {
    return Field{std::move(name), ValueType::kInt64, 8};
  }
  static Field Double(std::string name) {
    return Field{std::move(name), ValueType::kDouble, 8};
  }
  static Field String(std::string name, uint32_t width) {
    return Field{std::move(name), ValueType::kString, width};
  }
};

/// An ordered list of fields with precomputed byte offsets. Schemas are
/// immutable after construction and cheap to copy.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  const std::vector<Field>& fields() const { return fields_; }
  size_t field_count() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Byte offset of field i within a serialized record.
  uint32_t offset(size_t i) const { return offsets_[i]; }

  /// Total serialized record size in bytes.
  uint32_t record_size() const { return record_size_; }

  /// Index of the named field, or NotFound.
  StatusOr<size_t> FieldIndex(const std::string& name) const;

  /// Schema consisting of the given fields of this one, in the given order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// Concatenation (for join results). Field names are prefixed with
  /// `left_prefix`/`right_prefix` when non-empty to avoid collisions.
  static Schema Concat(const Schema& left, const std::string& left_prefix,
                       const Schema& right, const std::string& right_prefix);

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Field> fields_;
  std::vector<uint32_t> offsets_;
  uint32_t record_size_ = 0;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_SCHEMA_H_
