#include "db/predicate.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace viewmat::db {

Interval Interval::Intersect(const Interval& a, const Interval& b) {
  Interval out;
  if (a.lo && b.lo) {
    out.lo = std::max(*a.lo, *b.lo);
  } else {
    out.lo = a.lo ? a.lo : b.lo;
  }
  if (a.hi && b.hi) {
    out.hi = std::min(*a.hi, *b.hi);
  } else {
    out.hi = a.hi ? a.hi : b.hi;
  }
  return out;
}

Interval Interval::Hull(const Interval& a, const Interval& b) {
  Interval out;
  if (a.lo && b.lo) out.lo = std::min(*a.lo, *b.lo);
  if (a.hi && b.hi) out.hi = std::max(*a.hi, *b.hi);
  return out;
}

IntervalSet::IntervalSet(const Interval& interval) {
  // Reject inverted bounds (an empty interval).
  if (interval.lo && interval.hi && *interval.lo > *interval.hi) return;
  intervals_.push_back(interval);
}

bool IntervalSet::Contains(int64_t v) const {
  for (const Interval& i : intervals_) {
    if (i.Contains(v)) return true;
  }
  return false;
}

bool IntervalSet::IsAll() const {
  return intervals_.size() == 1 && intervals_[0].Unbounded();
}

namespace {

/// Orders intervals by lower bound (unbounded first).
bool IntervalLess(const Interval& a, const Interval& b) {
  if (!a.lo) return b.lo.has_value();
  if (!b.lo) return false;
  return *a.lo < *b.lo;
}

/// True when `a` and `b` overlap or touch (can be merged). Assumes a <= b
/// in IntervalLess order.
bool MergeableWithNext(const Interval& a, const Interval& b) {
  if (!a.hi) return true;
  if (!b.lo) return true;
  // Touching counts: [1,5] and [6,9] merge over the integers.
  return *b.lo <= *a.hi || (*a.hi < std::numeric_limits<int64_t>::max() &&
                            *b.lo == *a.hi + 1);
}

}  // namespace

void IntervalSet::Normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end(), IntervalLess);
  std::vector<Interval> out;
  out.push_back(intervals_[0]);
  for (size_t i = 1; i < intervals_.size(); ++i) {
    Interval& last = out.back();
    const Interval& cur = intervals_[i];
    if (MergeableWithNext(last, cur)) {
      if (last.hi && cur.hi) {
        last.hi = std::max(*last.hi, *cur.hi);
      } else {
        last.hi = std::nullopt;
      }
    } else {
      out.push_back(cur);
    }
  }
  intervals_ = std::move(out);
}

IntervalSet IntervalSet::Union(const IntervalSet& a, const IntervalSet& b) {
  IntervalSet out;
  out.intervals_ = a.intervals_;
  out.intervals_.insert(out.intervals_.end(), b.intervals_.begin(),
                        b.intervals_.end());
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& a,
                                   const IntervalSet& b) {
  IntervalSet out;
  for (const Interval& x : a.intervals_) {
    for (const Interval& y : b.intervals_) {
      const Interval both = Interval::Intersect(x, y);
      if (both.lo && both.hi && *both.lo > *both.hi) continue;
      out.intervals_.push_back(both);
    }
  }
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Complement(const IntervalSet& a) {
  // Over the closed int64 domain an unbounded side is equivalent to the
  // extreme value, so the complement is just the gaps between (normalized,
  // sorted, disjoint) intervals.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  IntervalSet out;
  int64_t next_uncovered = kMin;
  for (const Interval& i : a.intervals_) {
    const int64_t lo = i.lo ? *i.lo : kMin;
    const int64_t hi = i.hi ? *i.hi : kMax;
    if (lo > next_uncovered) {
      out.intervals_.push_back(Interval{next_uncovered, lo - 1});
    }
    if (hi == kMax) return out;
    next_uncovered = std::max(next_uncovered, hi + 1);
  }
  out.intervals_.push_back(Interval{next_uncovered, kMax});
  return out;
}

Interval IntervalSet::Hull() const {
  if (intervals_.empty()) {
    // Empty set: represent as an impossible interval.
    return Interval{1, 0};
  }
  Interval hull = intervals_.front();
  hull.hi = intervals_.back().hi;
  return hull;
}

PredicateRef Predicate::True() {
  return PredicateRef(new Predicate(Kind::kTrue));
}

PredicateRef Predicate::Compare(size_t field, CompareOp op, Value constant) {
  auto* p = new Predicate(Kind::kCompare);
  p->field_ = field;
  p->op_ = op;
  p->constant_ = std::move(constant);
  return PredicateRef(p);
}

PredicateRef Predicate::Between(size_t field, int64_t lo, int64_t hi) {
  return And(Compare(field, CompareOp::kGe, Value(lo)),
             Compare(field, CompareOp::kLe, Value(hi)));
}

PredicateRef Predicate::And(PredicateRef a, PredicateRef b) {
  auto* p = new Predicate(Kind::kAnd);
  p->children_ = {std::move(a), std::move(b)};
  return PredicateRef(p);
}

PredicateRef Predicate::Or(PredicateRef a, PredicateRef b) {
  auto* p = new Predicate(Kind::kOr);
  p->children_ = {std::move(a), std::move(b)};
  return PredicateRef(p);
}

PredicateRef Predicate::Not(PredicateRef a) {
  auto* p = new Predicate(Kind::kNot);
  p->children_ = {std::move(a)};
  return PredicateRef(p);
}

bool Predicate::Evaluate(const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare: {
      VIEWMAT_CHECK(field_ < tuple.size());
      const int c = tuple.at(field_).Compare(constant_);
      switch (op_) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case Kind::kAnd:
      return children_[0]->Evaluate(tuple) && children_[1]->Evaluate(tuple);
    case Kind::kOr:
      return children_[0]->Evaluate(tuple) || children_[1]->Evaluate(tuple);
    case Kind::kNot:
      return !children_[0]->Evaluate(tuple);
  }
  return false;
}

Interval Predicate::ImpliedRange(size_t field) const {
  switch (kind_) {
    case Kind::kTrue:
      return Interval{};
    case Kind::kCompare: {
      if (field_ != field || constant_.type() != ValueType::kInt64) {
        return Interval{};
      }
      const int64_t v = constant_.AsInt64();
      switch (op_) {
        case CompareOp::kEq:
          return Interval{v, v};
        case CompareOp::kNe:
          return Interval{};
        case CompareOp::kLt:
          return Interval{std::nullopt, v - 1};
        case CompareOp::kLe:
          return Interval{std::nullopt, v};
        case CompareOp::kGt:
          return Interval{v + 1, std::nullopt};
        case CompareOp::kGe:
          return Interval{v, std::nullopt};
      }
      return Interval{};
    }
    case Kind::kAnd:
      return Interval::Intersect(children_[0]->ImpliedRange(field),
                                 children_[1]->ImpliedRange(field));
    case Kind::kOr:
      return Interval::Hull(children_[0]->ImpliedRange(field),
                            children_[1]->ImpliedRange(field));
    case Kind::kNot:
      // A sound bound for NOT would need interval complements; stay
      // conservative (unbounded) instead.
      return Interval{};
  }
  return Interval{};
}

IntervalSet Predicate::ImpliedRangeSet(size_t field) const {
  switch (kind_) {
    case Kind::kTrue:
      return IntervalSet::All();
    case Kind::kCompare: {
      if (field_ != field || constant_.type() != ValueType::kInt64) {
        // A comparison on another field constrains nothing about `field`
        // (it may or may not be satisfiable; stay conservative).
        return IntervalSet::All();
      }
      const int64_t v = constant_.AsInt64();
      switch (op_) {
        case CompareOp::kEq:
          return IntervalSet(Interval{v, v});
        case CompareOp::kNe:
          return IntervalSet::Complement(IntervalSet(Interval{v, v}));
        case CompareOp::kLt:
          if (v == std::numeric_limits<int64_t>::min()) {
            return IntervalSet::Empty();
          }
          return IntervalSet(Interval{std::nullopt, v - 1});
        case CompareOp::kLe:
          return IntervalSet(Interval{std::nullopt, v});
        case CompareOp::kGt:
          if (v == std::numeric_limits<int64_t>::max()) {
            return IntervalSet::Empty();
          }
          return IntervalSet(Interval{v + 1, std::nullopt});
        case CompareOp::kGe:
          return IntervalSet(Interval{v, std::nullopt});
      }
      return IntervalSet::All();
    }
    case Kind::kAnd:
      return IntervalSet::Intersect(children_[0]->ImpliedRangeSet(field),
                                    children_[1]->ImpliedRangeSet(field));
    case Kind::kOr:
      return IntervalSet::Union(children_[0]->ImpliedRangeSet(field),
                                children_[1]->ImpliedRangeSet(field));
    case Kind::kNot: {
      // Complementing is exact only when the child's truth depends solely
      // on int64 comparisons over this field; a child that touches any
      // other field (or a non-integer constant) could be falsified through
      // it, so the sound answer is All.
      if (!children_[0]->AnalyzableOn(field)) return IntervalSet::All();
      return IntervalSet::Complement(children_[0]->ImpliedRangeSet(field));
    }
  }
  return IntervalSet::All();
}

bool Predicate::AnalyzableOn(size_t field) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      return field_ == field && constant_.type() == ValueType::kInt64;
    case Kind::kAnd:
    case Kind::kOr:
      return children_[0]->AnalyzableOn(field) &&
             children_[1]->AnalyzableOn(field);
    case Kind::kNot:
      return children_[0]->AnalyzableOn(field);
  }
  return false;
}

std::string Predicate::ToString(const Schema* schema) const {
  auto field_name = [&](size_t i) -> std::string {
    if (schema != nullptr && i < schema->field_count()) {
      return schema->field(i).name;
    }
    return "$" + std::to_string(i);
  };
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare: {
      const char* op = "?";
      switch (op_) {
        case CompareOp::kEq:
          op = "=";
          break;
        case CompareOp::kNe:
          op = "!=";
          break;
        case CompareOp::kLt:
          op = "<";
          break;
        case CompareOp::kLe:
          op = "<=";
          break;
        case CompareOp::kGt:
          op = ">";
          break;
        case CompareOp::kGe:
          op = ">=";
          break;
      }
      return field_name(field_) + " " + op + " " + constant_.ToString();
    }
    case Kind::kAnd:
      return "(" + children_[0]->ToString(schema) + " and " +
             children_[1]->ToString(schema) + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString(schema) + " or " +
             children_[1]->ToString(schema) + ")";
    case Kind::kNot:
      return "not (" + children_[0]->ToString(schema) + ")";
  }
  return "?";
}

}  // namespace viewmat::db
