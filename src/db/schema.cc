#include "db/schema.h"

#include "common/logging.h"

namespace viewmat::db {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  uint32_t off = 0;
  for (const Field& f : fields_) {
    VIEWMAT_CHECK_MSG(f.type == ValueType::kString || f.width == 8,
                      "numeric fields must be 8 bytes wide");
    VIEWMAT_CHECK(f.width > 0);
    offsets_.push_back(off);
    off += f.width;
  }
  record_size_ = off;
}

StatusOr<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named " + name);
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (const size_t i : indices) {
    VIEWMAT_CHECK(i < fields_.size());
    out.push_back(fields_[i]);
  }
  return Schema(std::move(out));
}

Schema Schema::Concat(const Schema& left, const std::string& left_prefix,
                      const Schema& right, const std::string& right_prefix) {
  std::vector<Field> out;
  out.reserve(left.field_count() + right.field_count());
  for (const Field& f : left.fields()) {
    Field g = f;
    if (!left_prefix.empty()) g.name = left_prefix + "." + f.name;
    out.push_back(std::move(g));
  }
  for (const Field& f : right.fields()) {
    Field g = f;
    if (!right_prefix.empty()) g.name = right_prefix + "." + f.name;
    out.push_back(std::move(g));
  }
  return Schema(std::move(out));
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.fields_.size() != b.fields_.size()) return false;
  for (size_t i = 0; i < a.fields_.size(); ++i) {
    if (a.fields_[i].name != b.fields_[i].name ||
        a.fields_[i].type != b.fields_[i].type ||
        a.fields_[i].width != b.fields_[i].width) {
      return false;
    }
  }
  return true;
}

}  // namespace viewmat::db
