#include "db/transaction.h"

#include <algorithm>

namespace viewmat::db {

void NetChange::AddInsert(const Tuple& t) {
  // Deleting then re-inserting the identical tuple is a net no-op.
  auto it = std::find(deletes_.begin(), deletes_.end(), t);
  if (it != deletes_.end()) {
    deletes_.erase(it);
    return;
  }
  inserts_.push_back(t);
}

void NetChange::AddDelete(const Tuple& t) {
  auto it = std::find(inserts_.begin(), inserts_.end(), t);
  if (it != inserts_.end()) {
    inserts_.erase(it);
    return;
  }
  deletes_.push_back(t);
}

void Transaction::Insert(Relation* rel, const Tuple& t) {
  changes_[rel].AddInsert(t);
}

void Transaction::Delete(Relation* rel, const Tuple& t) {
  changes_[rel].AddDelete(t);
}

void Transaction::Update(Relation* rel, const Tuple& old_t,
                         const Tuple& new_t) {
  NetChange& nc = changes_[rel];
  nc.AddDelete(old_t);
  nc.AddInsert(new_t);
}

const NetChange& Transaction::ChangesFor(Relation* rel) const {
  static const NetChange kEmpty;
  auto it = changes_.find(rel);
  return it == changes_.end() ? kEmpty : it->second;
}

size_t Transaction::tuples_written() const {
  size_t n = 0;
  for (const auto& [rel, nc] : changes_) n += nc.size();
  return n;
}

Status Transaction::ApplyToBase() const {
  for (const auto& [rel, nc] : changes_) {
    for (const Tuple& t : nc.deletes()) {
      VIEWMAT_RETURN_IF_ERROR(rel->DeleteExact(t));
    }
    for (const Tuple& t : nc.inserts()) {
      VIEWMAT_RETURN_IF_ERROR(rel->Insert(t));
    }
  }
  return Status::OK();
}

}  // namespace viewmat::db
