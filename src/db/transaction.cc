#include "db/transaction.h"

#include <algorithm>
#include <string>

namespace viewmat::db {

void NetChange::AddInsert(const Tuple& t) {
  // Deleting then re-inserting the identical tuple is a net no-op.
  auto it = std::find(deletes_.begin(), deletes_.end(), t);
  if (it != deletes_.end()) {
    deletes_.erase(it);
    return;
  }
  inserts_.push_back(t);
}

void NetChange::AddDelete(const Tuple& t) {
  auto it = std::find(inserts_.begin(), inserts_.end(), t);
  if (it != inserts_.end()) {
    inserts_.erase(it);
    return;
  }
  deletes_.push_back(t);
}

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kOpen:
      return "open";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

void Transaction::Insert(Relation* rel, const Tuple& t) {
  VIEWMAT_DCHECK(state_ == TxnState::kOpen);
  changes_[rel].AddInsert(t);
}

void Transaction::Delete(Relation* rel, const Tuple& t) {
  VIEWMAT_DCHECK(state_ == TxnState::kOpen);
  changes_[rel].AddDelete(t);
}

void Transaction::Update(Relation* rel, const Tuple& old_t,
                         const Tuple& new_t) {
  VIEWMAT_DCHECK(state_ == TxnState::kOpen);
  NetChange& nc = changes_[rel];
  nc.AddDelete(old_t);
  nc.AddInsert(new_t);
}

const NetChange& Transaction::ChangesFor(Relation* rel) const {
  static const NetChange kEmpty;
  auto it = changes_.find(rel);
  return it == changes_.end() ? kEmpty : it->second;
}

size_t Transaction::tuples_written() const {
  size_t n = 0;
  for (const auto& [rel, nc] : changes_) n += nc.size();
  return n;
}

namespace {

// Wraps a failed base write with enough context to see how far the
// transaction got: a crash-recovery operator (or the recovery oracle)
// reading the status knows exactly which relation and tuple the partial
// application stopped at, and how many writes landed before it.
Status PartialApplyError(const Status& cause, const char* op,
                         const Relation& rel, const Tuple& t,
                         size_t applied) {
  return Status(cause.code(),
                std::string("ApplyToBase stopped at ") + op + " of " +
                    t.ToString() + " into relation '" + rel.name() + "' (" +
                    std::to_string(applied) +
                    " writes applied before the failure): " + cause.message());
}

}  // namespace

Status Transaction::ApplyToBase() const {
  // Aborted transactions must never reach an engine; their net sets were
  // cleared by Abort(), so applying one would be a silent no-op that hides
  // a lifecycle bug in the caller.
  VIEWMAT_DCHECK(state_ != TxnState::kAborted);
  size_t applied = 0;
  for (const auto& [rel, nc] : changes_) {
    for (const Tuple& t : nc.deletes()) {
      Status st = rel->DeleteExact(t);
      if (!st.ok()) return PartialApplyError(st, "delete", *rel, t, applied);
      ++applied;
    }
    for (const Tuple& t : nc.inserts()) {
      Status st = rel->Insert(t);
      if (!st.ok()) return PartialApplyError(st, "insert", *rel, t, applied);
      ++applied;
    }
  }
  return Status::OK();
}

}  // namespace viewmat::db
