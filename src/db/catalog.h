#ifndef VIEWMAT_DB_CATALOG_H_
#define VIEWMAT_DB_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "db/relation.h"

namespace viewmat::db {

/// Name -> relation registry for one database instance. Owns the relations;
/// everything else holds raw pointers whose lifetime the catalog guarantees.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates and registers a relation. AlreadyExists if the name is taken.
  StatusOr<Relation*> CreateRelation(const std::string& name, Schema schema,
                                     AccessMethod method, size_t key_field,
                                     Relation::Options options = Relation::Options());

  /// Looks up a relation by name.
  StatusOr<Relation*> Get(const std::string& name) const;

  /// Unregisters and destroys a relation. Its pages are NOT reclaimed
  /// (relations do not track every internal page); intended for teardown.
  Status Drop(const std::string& name);

  storage::BufferPool* pool() const { return pool_; }
  size_t relation_count() const { return relations_.size(); }

 private:
  storage::BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace viewmat::db

#endif  // VIEWMAT_DB_CATALOG_H_
