#include "db/relation.h"

#include <vector>

#include "common/logging.h"

namespace viewmat::db {

namespace {

/// Serialized image of a tuple, reused as a comparison buffer.
std::vector<uint8_t> SerializeTuple(const Schema& schema, const Tuple& t) {
  std::vector<uint8_t> buf(schema.record_size());
  t.Serialize(schema, buf.data());
  return buf;
}

}  // namespace

Relation::Relation(storage::BufferPool* pool, std::string name, Schema schema,
                   AccessMethod method, size_t key_field, Options options)
    : pool_(pool),
      name_(std::move(name)),
      schema_(std::move(schema)),
      method_(method),
      key_field_(key_field) {
  VIEWMAT_CHECK(pool_ != nullptr);
  VIEWMAT_CHECK(key_field_ < schema_.field_count());
  VIEWMAT_CHECK_MSG(schema_.field(key_field_).type == ValueType::kInt64,
                    "clustering key must be int64");
  const uint32_t record_size = schema_.record_size();
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      btree_ = std::make_unique<storage::BPTree>(pool_, record_size);
      break;
    case AccessMethod::kClusteredHash: {
      uint32_t buckets = options.hash_buckets;
      if (buckets == 0) {
        const uint32_t per_page =
            (pool_->disk()->page_size() - 8) / (8 + record_size);
        buckets = static_cast<uint32_t>(
            options.expected_tuples / std::max<uint32_t>(per_page, 1) + 1);
      }
      hash_ = std::make_unique<storage::HashIndex>(pool_, record_size,
                                                   buckets);
      break;
    }
    case AccessMethod::kHeap:
      heap_ = std::make_unique<storage::HeapFile>(pool_, record_size);
      break;
  }
}

int64_t Relation::KeyOf(const Tuple& t) const {
  VIEWMAT_CHECK(key_field_ < t.size());
  return t.at(key_field_).AsInt64();
}

Status Relation::Insert(const Tuple& t) {
  const std::vector<uint8_t> buf = SerializeTuple(schema_, t);
  const int64_t key = KeyOf(t);
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      VIEWMAT_RETURN_IF_ERROR(btree_->Insert(key, buf.data()));
      break;
    case AccessMethod::kClusteredHash:
      VIEWMAT_RETURN_IF_ERROR(hash_->Insert(key, buf.data()));
      break;
    case AccessMethod::kHeap: {
      VIEWMAT_ASSIGN_OR_RETURN(const storage::Rid rid,
                               heap_->Insert(buf.data()));
      heap_key_index_.emplace(key, rid);
      break;
    }
  }
  ++tuple_count_;
  return Status::OK();
}

Status Relation::BulkLoadSorted(
    const std::function<bool(Tuple*)>& source) {
  if (method_ != AccessMethod::kClusteredBTree) {
    return Status::InvalidArgument("bulk load requires a B+-tree relation");
  }
  if (tuple_count_ != 0) {
    return Status::FailedPrecondition("bulk load requires an empty relation");
  }
  std::vector<uint8_t> buf(schema_.record_size());
  size_t loaded = 0;
  VIEWMAT_RETURN_IF_ERROR(btree_->BulkLoad(
      [&](int64_t* key, uint8_t* payload) {
        Tuple t;
        if (!source(&t)) return false;
        *key = KeyOf(t);
        t.Serialize(schema_, payload);
        ++loaded;
        return true;
      },
      /*fill_factor=*/1.0));
  tuple_count_ = loaded;
  return Status::OK();
}

Status Relation::Compact() {
  if (method_ != AccessMethod::kClusteredBTree) {
    return Status::InvalidArgument("compact requires a B+-tree relation");
  }
  return btree_->Compact(1.0);
}

Status Relation::HeapDeleteWhere(
    int64_t key, const std::function<bool(const Tuple&)>& pred) {
  std::vector<uint8_t> buf(schema_.record_size());
  auto [it, end] = heap_key_index_.equal_range(key);
  for (; it != end; ++it) {
    VIEWMAT_RETURN_IF_ERROR(heap_->Get(it->second, buf.data()));
    const Tuple stored = Tuple::Deserialize(schema_, buf.data());
    if (pred(stored)) {
      VIEWMAT_RETURN_IF_ERROR(heap_->Delete(it->second));
      heap_key_index_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no matching tuple");
}

Status Relation::DeleteExact(const Tuple& t) {
  const std::vector<uint8_t> buf = SerializeTuple(schema_, t);
  const int64_t key = KeyOf(t);
  auto bytes_match = [&](const uint8_t* payload) {
    return std::memcmp(payload, buf.data(), buf.size()) == 0;
  };
  Status st;
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      st = btree_->Delete(key, bytes_match);
      break;
    case AccessMethod::kClusteredHash:
      st = hash_->Delete(key, bytes_match);
      break;
    case AccessMethod::kHeap:
      st = HeapDeleteWhere(key, [&](const Tuple& s) { return s == t; });
      break;
  }
  if (st.ok()) --tuple_count_;
  return st;
}

Status Relation::UpdateExact(const Tuple& old_t, const Tuple& new_t) {
  const int64_t old_key = KeyOf(old_t);
  const int64_t new_key = KeyOf(new_t);
  if (old_key != new_key) {
    VIEWMAT_RETURN_IF_ERROR(DeleteExact(old_t));
    return Insert(new_t);
  }
  const std::vector<uint8_t> old_buf = SerializeTuple(schema_, old_t);
  const std::vector<uint8_t> new_buf = SerializeTuple(schema_, new_t);
  auto bytes_match = [&](const uint8_t* payload) {
    return std::memcmp(payload, old_buf.data(), old_buf.size()) == 0;
  };
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      return btree_->UpdatePayload(old_key, bytes_match, new_buf.data());
    case AccessMethod::kClusteredHash:
      return hash_->UpdatePayload(old_key, bytes_match, new_buf.data());
    case AccessMethod::kHeap: {
      auto [it, end] = heap_key_index_.equal_range(old_key);
      std::vector<uint8_t> buf(schema_.record_size());
      for (; it != end; ++it) {
        VIEWMAT_RETURN_IF_ERROR(heap_->Get(it->second, buf.data()));
        if (std::memcmp(buf.data(), old_buf.data(), buf.size()) == 0) {
          return heap_->Update(it->second, new_buf.data());
        }
      }
      return Status::NotFound("no matching tuple");
    }
  }
  return Status::Internal("unreachable");
}

Status Relation::FindByKey(int64_t key, Tuple* out) const {
  std::vector<uint8_t> buf(schema_.record_size());
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      VIEWMAT_RETURN_IF_ERROR(btree_->Find(key, buf.data()));
      break;
    case AccessMethod::kClusteredHash:
      VIEWMAT_RETURN_IF_ERROR(hash_->Find(key, buf.data()));
      break;
    case AccessMethod::kHeap: {
      auto it = heap_key_index_.find(key);
      if (it == heap_key_index_.end()) return Status::NotFound("key absent");
      VIEWMAT_RETURN_IF_ERROR(heap_->Get(it->second, buf.data()));
      break;
    }
  }
  *out = Tuple::Deserialize(schema_, buf.data());
  return Status::OK();
}

Status Relation::FindAllByKey(int64_t key, const TupleVisitor& visit) const {
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      return btree_->RangeScan(key, key,
                               [&](int64_t, const uint8_t* payload) {
                                 return visit(
                                     Tuple::Deserialize(schema_, payload));
                               });
    case AccessMethod::kClusteredHash:
      return hash_->FindAll(key, [&](int64_t, const uint8_t* payload) {
        return visit(Tuple::Deserialize(schema_, payload));
      });
    case AccessMethod::kHeap: {
      std::vector<uint8_t> buf(schema_.record_size());
      auto [it, end] = heap_key_index_.equal_range(key);
      for (; it != end; ++it) {
        VIEWMAT_RETURN_IF_ERROR(heap_->Get(it->second, buf.data()));
        if (!visit(Tuple::Deserialize(schema_, buf.data()))) break;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status Relation::Scan(const TupleVisitor& visit) const {
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      return btree_->ScanAll([&](int64_t, const uint8_t* payload) {
        return visit(Tuple::Deserialize(schema_, payload));
      });
    case AccessMethod::kClusteredHash:
      return hash_->ScanAll([&](int64_t, const uint8_t* payload) {
        return visit(Tuple::Deserialize(schema_, payload));
      });
    case AccessMethod::kHeap:
      return heap_->Scan([&](storage::Rid, const uint8_t* record) {
        return visit(Tuple::Deserialize(schema_, record));
      });
  }
  return Status::Internal("unreachable");
}

Status Relation::RangeScanByKey(int64_t lo, int64_t hi,
                                const TupleVisitor& visit) const {
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      return btree_->RangeScan(lo, hi, [&](int64_t, const uint8_t* payload) {
        return visit(Tuple::Deserialize(schema_, payload));
      });
    case AccessMethod::kClusteredHash:
      return Status::InvalidArgument(
          "hash access method cannot serve range scans");
    case AccessMethod::kHeap: {
      // Unclustered plan: walk the secondary index, fetch each data page.
      std::vector<uint8_t> buf(schema_.record_size());
      for (auto it = heap_key_index_.lower_bound(lo);
           it != heap_key_index_.end() && it->first <= hi; ++it) {
        VIEWMAT_RETURN_IF_ERROR(heap_->Get(it->second, buf.data()));
        if (!visit(Tuple::Deserialize(schema_, buf.data()))) break;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

size_t Relation::data_page_count() const {
  switch (method_) {
    case AccessMethod::kClusteredBTree:
      return btree_->leaf_page_count();
    case AccessMethod::kClusteredHash:
      return hash_->page_count();
    case AccessMethod::kHeap:
      return heap_->page_count();
  }
  return 0;
}

}  // namespace viewmat::db
