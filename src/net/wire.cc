#include "net/wire.h"

#include <cstring>

namespace viewmat::net {

namespace {

template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  const size_t off = out->size();
  out->resize(off + sizeof(T));
  std::memcpy(out->data() + off, &v, sizeof(T));
}

template <typename T>
bool Get(const uint8_t* data, size_t len, size_t* off, T* out) {
  if (*off + sizeof(T) > len) return false;
  std::memcpy(out, data + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kOpenSession: return "open_session";
    case MsgType::kOpenAck: return "open_ack";
    case MsgType::kCommit: return "commit";
    case MsgType::kQuery: return "query";
    case MsgType::kReply: return "reply";
    case MsgType::kRefreshPing: return "refresh_ping";
    case MsgType::kRefreshAck: return "refresh_ack";
  }
  return "?";
}

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kRejected: return "rejected";
  }
  return "?";
}

std::vector<uint8_t> Message::Encode() const {
  std::vector<uint8_t> out;
  Put<uint8_t>(&out, static_cast<uint8_t>(type));
  Put<uint64_t>(&out, session_id);
  Put<uint64_t>(&out, seq_no);
  Put<uint32_t>(&out, attempt);
  Put<uint32_t>(&out, static_cast<uint32_t>(victims.size()));
  for (const auto& [key, delta] : victims) {
    Put<int64_t>(&out, key);
    Put<double>(&out, delta);
  }
  Put<int64_t>(&out, lo);
  Put<int64_t>(&out, hi);
  Put<uint8_t>(&out, static_cast<uint8_t>(wstatus));
  Put<uint64_t>(&out, txn_id);
  Put<uint64_t>(&out, answer_digest);
  Put<uint64_t>(&out, journal_len);
  Put<uint8_t>(&out, degraded ? 1 : 0);
  return out;
}

StatusOr<Message> Message::Decode(const uint8_t* data, size_t len) {
  Message msg;
  size_t off = 0;
  uint8_t type = 0, wstatus = 0, degraded = 0;
  uint32_t nvictims = 0;
  if (!Get(data, len, &off, &type) || !Get(data, len, &off, &msg.session_id) ||
      !Get(data, len, &off, &msg.seq_no) ||
      !Get(data, len, &off, &msg.attempt) ||
      !Get(data, len, &off, &nvictims)) {
    return Status::InvalidArgument("wire message truncated in header");
  }
  if (type < static_cast<uint8_t>(MsgType::kOpenSession) ||
      type > static_cast<uint8_t>(MsgType::kRefreshAck)) {
    return Status::InvalidArgument("wire message has unknown type " +
                                   std::to_string(type));
  }
  msg.type = static_cast<MsgType>(type);
  msg.victims.reserve(nvictims);
  for (uint32_t i = 0; i < nvictims; ++i) {
    int64_t key = 0;
    double delta = 0;
    if (!Get(data, len, &off, &key) || !Get(data, len, &off, &delta)) {
      return Status::InvalidArgument("wire message truncated in victim list");
    }
    msg.victims.emplace_back(key, delta);
  }
  if (!Get(data, len, &off, &msg.lo) || !Get(data, len, &off, &msg.hi) ||
      !Get(data, len, &off, &wstatus) || !Get(data, len, &off, &msg.txn_id) ||
      !Get(data, len, &off, &msg.answer_digest) ||
      !Get(data, len, &off, &msg.journal_len) ||
      !Get(data, len, &off, &degraded)) {
    return Status::InvalidArgument("wire message truncated in trailer");
  }
  if (wstatus < static_cast<uint8_t>(WireStatus::kOk) ||
      wstatus > static_cast<uint8_t>(WireStatus::kRejected)) {
    return Status::InvalidArgument("wire message has unknown status " +
                                   std::to_string(wstatus));
  }
  msg.wstatus = static_cast<WireStatus>(wstatus);
  msg.degraded = degraded != 0;
  if (off != len) {
    return Status::InvalidArgument("wire message has trailing bytes");
  }
  return msg;
}

}  // namespace viewmat::net
