#include "net/session_server.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>

#include "common/logging.h"
#include "workload/workload.h"

namespace viewmat::net {

namespace {

/// Restart rounds before the server stays down for good (the chaos
/// oracle's event cap then flags the run instead of looping forever).
constexpr int kMaxRestartRounds = 16;
/// Recovery attempts inside one live ambiguity resolution (mirrors the
/// crash oracle's headroom for a crash landing inside recovery itself).
constexpr int kMaxRecoverAttempts = 8;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

template <typename T>
bool GetVal(const uint8_t* data, uint16_t len, size_t* off, T* out) {
  if (*off + sizeof(T) > len) return false;
  std::memcpy(out, data + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

/// A decoded kSessionStamp record.
struct Stamp {
  uint64_t session = 0;
  uint64_t seq = 0;
  uint64_t txn = 0;
  std::vector<std::pair<int64_t, double>> victims;
};

bool DecodeStamp(const uint8_t* data, uint16_t len, Stamp* out) {
  size_t off = 0;
  uint32_t n = 0;
  if (!GetVal(data, len, &off, &out->session) ||
      !GetVal(data, len, &off, &out->seq) ||
      !GetVal(data, len, &off, &out->txn) || !GetVal(data, len, &off, &n)) {
    return false;
  }
  out->victims.clear();
  out->victims.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t key = 0;
    double delta = 0.0;
    if (!GetVal(data, len, &off, &key) || !GetVal(data, len, &off, &delta)) {
      return false;
    }
    out->victims.emplace_back(key, delta);
  }
  return off == len;
}

}  // namespace

uint64_t DigestMultiset(const sim::ViewMultiset& m) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [t, count] : m) {
    mix(t.ToString() + ":" + std::to_string(count));
  }
  return h;
}

void RefreshDaemon::OnMessage(NodeId from, const Message& msg) {
  if (msg.type != MsgType::kRefreshPing) return;
  ++pings_acked_;
  Message ack;
  ack.type = MsgType::kRefreshAck;
  ack.seq_no = msg.seq_no;
  ack.wstatus = WireStatus::kOk;
  (void)net_->Send(node_, from, ack);
}

StatusOr<std::unique_ptr<SessionServer>> SessionServer::Create(
    const Options& options) {
  if (options.driver == nullptr) {
    return Status::InvalidArgument(
        "SessionServer::Options::driver must be non-null");
  }
  if (options.events == nullptr) {
    return Status::InvalidArgument(
        "SessionServer::Options::events must be non-null");
  }
  if (options.net == nullptr) {
    return Status::InvalidArgument(
        "SessionServer::Options::net must be non-null");
  }
  if (options.max_inflight == 0) {
    return Status::InvalidArgument(
        "SessionServer::Options::max_inflight must be > 0");
  }
  if (options.max_sessions == 0) {
    return Status::InvalidArgument(
        "SessionServer::Options::max_sessions must be > 0");
  }
  if (options.restart_delay_ms <= 0.0) {
    return Status::InvalidArgument(
        "SessionServer::Options::restart_delay_ms must be > 0");
  }
  if (options.refresh_every_ms < 0.0) {
    return Status::InvalidArgument(
        "SessionServer::Options::refresh_every_ms must be >= 0");
  }
  return std::unique_ptr<SessionServer>(new SessionServer(options));
}

SessionServer::SessionServer(const Options& options)
    : options_(options),
      shadow_(sim::MakeShadow(*options.driver->scenario())) {}

void SessionServer::Counter(const char* name) {
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(name)->Increment();
  }
}

SessionServer::SessionState* SessionServer::Session(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return &it->second;
  if (sessions_.size() >= options_.max_sessions) return nullptr;
  return &sessions_[session_id];
}

void SessionServer::Reply(NodeId dst, const Message& reply, double delay_ms) {
  (void)options_.net->Send(options_.node, dst, reply, delay_ms);
}

void SessionServer::OnMessage(NodeId from, const Message& msg) {
  if (down_) {
    // A crashed process answers nothing; clients time out and retry.
    ++dropped_while_down_;
    return;
  }
  switch (msg.type) {
    case MsgType::kOpenSession: {
      // Opening is idempotent and cheap: no queue, no dedup needed.
      SessionState* s = Session(msg.session_id);
      Message ack;
      ack.type = MsgType::kOpenAck;
      ack.session_id = msg.session_id;
      ack.seq_no = msg.seq_no;
      ack.wstatus = s != nullptr ? WireStatus::kOk : WireStatus::kOverloaded;
      Reply(from, ack);
      break;
    }
    case MsgType::kCommit:
    case MsgType::kQuery:
      HandleRequest(from, msg);
      break;
    case MsgType::kRefreshAck:
      refresh_pending_ = false;
      if (!refresh_link_up_) {
        refresh_link_up_ = true;
        Counter("net_refresh_link_recovered_total");
      }
      break;
    default:
      break;  // a server never receives replies; ignore stray frames
  }
  // Only client traffic counts as activity and (re)arms the health tick.
  // The refresher's own ack must not: ping → ack → re-arm would be a
  // self-sustaining loop that keeps an otherwise idle queue alive forever.
  if (msg.type == MsgType::kOpenSession || msg.type == MsgType::kCommit ||
      msg.type == MsgType::kQuery) {
    activity_since_tick_ = true;
    ArmRefreshTick();
  }
}

void SessionServer::HandleRequest(NodeId from, const Message& msg) {
  SessionState* s = Session(msg.session_id);
  if (s == nullptr) {
    Message reply;
    reply.type = MsgType::kReply;
    reply.session_id = msg.session_id;
    reply.seq_no = msg.seq_no;
    reply.wstatus = WireStatus::kOverloaded;
    ++shed_requests_;
    Counter("net_requests_shed_total");
    Reply(from, reply);
    return;
  }
  // Redelivery fast path — commits only (a re-executed query is merely
  // wasted work, and its fresh answer is exact at the fresh journal
  // prefix; a re-executed commit would be a correctness bug).
  if (msg.type == MsgType::kCommit && msg.seq_no <= s->last_applied) {
    const obs::ScopedSpan span(options_.tracer, "net.redeliver");
    ++redelivered_hits_;
    Counter("net_redelivered_commits_total");
    if (s->has_cached && msg.seq_no == s->cached.seq_no) {
      Reply(from, s->cached);
    } else {
      // Older than the cached reply: the client necessarily advanced past
      // it once already, so a synthesized kOk is faithful.
      Message reply;
      reply.type = MsgType::kReply;
      reply.session_id = msg.session_id;
      reply.seq_no = msg.seq_no;
      reply.wstatus = WireStatus::kOk;
      Reply(from, reply);
    }
    return;
  }
  // Admission control: shed above the inflight bound.
  const size_t inflight = queue_.size() + (processing_ ? 1 : 0);
  if (inflight >= options_.max_inflight) {
    Message reply;
    reply.type = MsgType::kReply;
    reply.session_id = msg.session_id;
    reply.seq_no = msg.seq_no;
    reply.wstatus = WireStatus::kOverloaded;
    ++shed_requests_;
    Counter("net_requests_shed_total");
    Reply(from, reply);
    return;
  }
  queue_.emplace_back(from, msg);
  StartNext();
}

void SessionServer::StartNext() {
  if (down_ || processing_ || queue_.empty()) return;
  const auto [from, msg] = queue_.front();
  queue_.pop_front();
  processing_ = true;
  Message reply;
  double service_ms = 0.01;
  if (!Execute(msg, &reply, &service_ms)) {
    // Crashed mid-execution; EnterCrashed already reset the pipeline.
    return;
  }
  // The reply leaves (and the next request starts) once the model service
  // time has elapsed — the engine's CostTracker is the clock source, so
  // heavier strategies really do hold the pipeline longer.
  const uint64_t epoch = epoch_;
  options_.events->Post(service_ms, [this, epoch, from, reply]() {
    if (epoch != epoch_) return;  // a crash superseded this completion
    processing_ = false;
    if (!down_) Reply(from, reply);
    StartNext();
  });
}

bool SessionServer::Execute(const Message& msg, Message* reply,
                            double* service_ms) {
  sim::StrategyDriver* driver = options_.driver;
  const double t0 = driver->tracker()->TotalMs();
  reply->type = MsgType::kReply;
  reply->session_id = msg.session_id;
  reply->seq_no = msg.seq_no;
  SessionState* s = Session(msg.session_id);
  VIEWMAT_CHECK(s != nullptr);  // admission already pinned the session

  if (msg.type == MsgType::kCommit) {
    // A duplicate can sit in the queue behind the copy that applied it;
    // re-check the dedup floor at execution time.
    if (msg.seq_no <= s->last_applied) {
      const obs::ScopedSpan span(options_.tracer, "net.redeliver");
      ++redelivered_hits_;
      Counter("net_redelivered_commits_total");
      if (s->has_cached && msg.seq_no == s->cached.seq_no) {
        *reply = s->cached;
      } else {
        reply->wstatus = WireStatus::kOk;
      }
      *service_ms = 0.01;
      return true;
    }
    for (const auto& [key, delta] : msg.victims) {
      (void)delta;
      if (key < 0 || key >= shadow_.n) {
        reply->wstatus = WireStatus::kRejected;
        ++rejected_commits_;
        *service_ms = 0.01;
        return true;
      }
    }
    uint64_t txn_id = 0;
    switch (ApplyCommit(msg, &txn_id)) {
      case CommitOutcome::kCrash:
        EnterCrashed();
        return false;
      case CommitOutcome::kNotCommitted:
        reply->wstatus = WireStatus::kRejected;
        ++rejected_commits_;
        Counter("net_commits_rejected_total");
        break;
      case CommitOutcome::kCommitted:
        reply->wstatus = WireStatus::kOk;
        reply->txn_id = txn_id;
        RecordApplied(msg, txn_id, *reply);
        if (const Status st = MaybeSessionCheckpoint();
            !st.ok() && driver->disk()->crashed()) {
          // The commit IS applied and journaled; the crash only costs the
          // reply. The client's retry is answered from the rebuilt dedup
          // table.
          EnterCrashed();
          return false;
        }
        break;
    }
  } else {  // kQuery
    sim::ViewMultiset got;
    const Status st =
        driver->Query(msg.lo, msg.hi, [&](const db::Tuple& t, int64_t count) {
          got[t] += count;
          return true;
        });
    if (!st.ok()) {
      if (driver->disk()->crashed()) {
        EnterCrashed();
        return false;
      }
      reply->wstatus = WireStatus::kRejected;
    } else {
      reply->wstatus = WireStatus::kOk;
      reply->answer_digest = DigestMultiset(got);
      reply->journal_len = journal_.size();
      reply->lo = msg.lo;
      reply->hi = msg.hi;
      reply->degraded = !refresh_link_up_;
      if (reply->degraded) {
        ++degraded_replies_;
        Counter("net_degraded_replies_total");
      }
    }
  }
  *service_ms = std::max(0.01, driver->tracker()->TotalMs() - t0);
  return true;
}

db::Transaction SessionServer::BuildTxn(
    const std::vector<std::pair<int64_t, double>>& victims,
    std::map<int64_t, double>* staged) const {
  db::Transaction txn;
  for (const auto& [key, delta] : victims) {
    const double old_v =
        staged->count(key) ? (*staged)[key] : shadow_.v[key];
    const double new_v = old_v + delta;
    db::Tuple old_t = shadow_.BaseTuple(key);
    old_t.at(workload::Scenario::kFieldV) = db::Value(old_v);
    db::Tuple new_t = old_t;
    new_t.at(workload::Scenario::kFieldV) = db::Value(new_v);
    txn.Update(options_.driver->base(), old_t, new_t);
    (*staged)[key] = new_v;
  }
  return txn;
}

SessionServer::CommitOutcome SessionServer::ApplyCommit(const Message& msg,
                                                        uint64_t* txn_id) {
  sim::StrategyDriver* driver = options_.driver;
  const uint64_t predicted = driver->txn_seq() + 1;

  // 1. Stamp first: (session, seq, predicted txn id, victims) into the
  //    recovery WAL. For WAL-committing strategies the commit's own sync
  //    covers it (prefix durability); deferred/hybrid commit through the
  //    AD log, so the stamp is synced explicitly before the commit runs.
  //    Either way: commit durable ⇒ stamp durable.
  std::vector<uint8_t> payload;
  PutU64(&payload, msg.session_id);
  PutU64(&payload, msg.seq_no);
  PutU64(&payload, predicted);
  PutU32(&payload, static_cast<uint32_t>(msg.victims.size()));
  for (const auto& [key, delta] : msg.victims) {
    PutU64(&payload, static_cast<uint64_t>(key));
    uint64_t bits = 0;
    std::memcpy(&bits, &delta, sizeof(bits));
    PutU64(&payload, bits);
  }
  Status st = driver->recovery()->wal()->Append(
      db::RecoveryManager::kSessionStamp, payload.data(),
      static_cast<uint16_t>(payload.size()));
  if (st.ok() && (driver->kind() == sim::StrategyKind::kDeferred ||
                  driver->kind() == sim::StrategyKind::kHybrid)) {
    st = driver->recovery()->SyncWal();
  }
  if (!st.ok()) {
    // No transaction id was drawn: provably nothing committed.
    return driver->disk()->crashed() ? CommitOutcome::kCrash
                                     : CommitOutcome::kNotCommitted;
  }

  // 2. Commit through the engine.
  std::map<int64_t, double> staged;
  const db::Transaction txn = BuildTxn(msg.victims, &staged);
  const uint64_t seq_before = driver->txn_seq();
  st = driver->OnTransaction(txn);
  if (st.ok()) {
    *txn_id = driver->txn_seq();
    for (const auto& [key, v] : staged) shadow_.v[key] = v;
    return CommitOutcome::kCommitted;
  }
  if (driver->disk()->crashed()) return CommitOutcome::kCrash;
  if (driver->txn_seq() == seq_before) {
    // Rejected before an id was issued: no commit record can exist.
    return CommitOutcome::kNotCommitted;
  }
  // 3. Ambiguous on a live device: the recovered log's committed
  //    high-water mark is the arbiter (the crash-oracle rule). A crash
  //    during resolution falls back to the restart path, which resolves
  //    the same question from the same durable evidence.
  bool recovered = false;
  for (int attempt = 0; attempt < kMaxRecoverAttempts; ++attempt) {
    if (driver->disk()->crashed()) return CommitOutcome::kCrash;
    if (driver->Recover().ok()) {
      recovered = true;
      break;
    }
  }
  if (!recovered) return CommitOutcome::kCrash;
  ++ambiguous_resolved_;
  Counter("net_ambiguous_commits_resolved_total");
  if (driver->committed_txn_high_water() >= predicted) {
    *txn_id = predicted;
    for (const auto& [key, v] : staged) shadow_.v[key] = v;
    return CommitOutcome::kCommitted;
  }
  return CommitOutcome::kNotCommitted;
}

void SessionServer::RecordApplied(const Message& msg, uint64_t txn_id,
                                  const Message& reply) {
  JournalEntry entry;
  entry.session = msg.session_id;
  entry.seq = msg.seq_no;
  entry.txn_id = txn_id;
  entry.victims = msg.victims;
  journal_.push_back(std::move(entry));
  journal_index_.emplace(msg.session_id, msg.seq_no);
  SessionState* s = Session(msg.session_id);
  s->last_applied = msg.seq_no;
  s->cached = reply;
  s->has_cached = true;
  ++commits_applied_;
  Counter("net_commits_applied_total");
}

Status SessionServer::MaybeSessionCheckpoint() {
  if (options_.checkpoint_every == 0) return Status::OK();
  if (++commits_since_checkpoint_ < options_.checkpoint_every) {
    return Status::OK();
  }
  // Snapshot the dedup floors; the snapshot rides the checkpoint's atomic
  // head-page write, so the WAL can never hold a commit history the table
  // does not summarize.
  std::vector<uint8_t> payload;
  PutU32(&payload, static_cast<uint32_t>(sessions_.size()));
  for (const auto& [id, state] : sessions_) {
    PutU64(&payload, id);
    PutU64(&payload, state.last_applied);
  }
  db::RecoveryManager::ExtraRecord extra;
  extra.type = db::RecoveryManager::kSessionTable;
  extra.payload = std::move(payload);
  VIEWMAT_RETURN_IF_ERROR(options_.driver->recovery()->Checkpoint({extra}));
  commits_since_checkpoint_ = 0;
  ++session_checkpoints_;
  Counter("net_session_checkpoints_total");
  return Status::OK();
}

void SessionServer::EnterCrashed() {
  if (down_) return;
  down_ = true;
  ++crashes_;
  ++epoch_;  // invalidates in-flight completion events
  queue_.clear();
  processing_ = false;
  refresh_pending_ = false;
  Counter("net_server_crashes_total");
  const uint64_t epoch = epoch_;
  options_.events->Post(options_.restart_delay_ms, [this, epoch]() {
    if (down_ && epoch == epoch_) AttemptRestart();
  });
}

void SessionServer::AttemptRestart() {
  sim::StrategyDriver* driver = options_.driver;
  if (driver->disk()->crashed()) driver->disk()->Restart();
  // Volatile state died with the crash: both the strategy's commit log
  // (AD log for deferred/hybrid) and the recovery WAL carrying the
  // stamps must drop their staged tails before anything syncs again.
  Status st = driver->DiscardVolatileWal();
  if (st.ok()) st = driver->recovery()->DiscardVolatileWal();
  if (st.ok()) st = driver->Recover();
  if (st.ok()) st = RebuildSessions();
  if (st.ok()) st = RebuildShadow();
  if (!st.ok()) {
    if (++restart_round_ >= kMaxRestartRounds) return;  // stay down
    const uint64_t epoch = epoch_;
    options_.events->Post(options_.restart_delay_ms, [this, epoch]() {
      if (down_ && epoch == epoch_) AttemptRestart();
    });
    return;
  }
  restart_round_ = 0;
  down_ = false;
  refresh_link_up_ = true;
  ++recoveries_;
  Counter("net_server_recoveries_total");
}

Status SessionServer::RebuildSessions() {
  sim::StrategyDriver* driver = options_.driver;
  std::map<uint64_t, uint64_t> table;  // session -> checkpointed floor
  std::vector<Stamp> stamps;
  std::set<uint64_t> aborted;  // txn ids tombstoned by earlier rebuilds
  Status decode_error = Status::OK();
  const Status scanned = driver->recovery()->wal()->Scan(
      [&](uint8_t type, const uint8_t* payload, uint16_t len) {
        if (type == db::RecoveryManager::kSessionAbort) {
          uint64_t txn = 0;
          size_t off = 0;
          if (!GetVal(payload, len, &off, &txn) || off != len) {
            decode_error = Status::Internal("bad kSessionAbort record");
            return false;
          }
          aborted.insert(txn);
        } else if (type == db::RecoveryManager::kSessionTable) {
          size_t off = 0;
          uint32_t count = 0;
          if (!GetVal(payload, len, &off, &count)) {
            decode_error = Status::Internal("bad kSessionTable record");
            return false;
          }
          for (uint32_t i = 0; i < count; ++i) {
            uint64_t session = 0, floor = 0;
            if (!GetVal(payload, len, &off, &session) ||
                !GetVal(payload, len, &off, &floor)) {
              decode_error = Status::Internal("bad kSessionTable record");
              return false;
            }
            table[session] = std::max(table[session], floor);
          }
        } else if (type == db::RecoveryManager::kSessionStamp) {
          Stamp stamp;
          if (!DecodeStamp(payload, len, &stamp)) {
            decode_error = Status::Internal("bad kSessionStamp record");
            return false;
          }
          stamps.push_back(std::move(stamp));
        }
        return true;
      });
  VIEWMAT_RETURN_IF_ERROR(scanned);
  VIEWMAT_RETURN_IF_ERROR(decode_error);

  // A failed attempt's predicted id is usually re-predicted by later
  // attempts until some attempt consumes it — and after that every
  // prediction is larger. So among stamps naming one txn id, only the
  // LAST in log order can belong to the attempt that really committed
  // it. The one exception is an id the engine durably DREW but never
  // committed (crash between the id draw and the commit record): that id
  // is skipped forever, no later stamp ever names it, and once the
  // high-water mark passes it the dead stamp would look committed. Those
  // ids are tombstoned with kSessionAbort records below, at the only
  // moment they are detectable: high < txn <= recovered txn_seq.
  std::map<uint64_t, size_t> last_stamp_for_txn;
  for (size_t i = 0; i < stamps.size(); ++i) {
    last_stamp_for_txn[stamps[i].txn] = i;
  }
  const uint64_t high = driver->committed_txn_high_water();

  sessions_.clear();
  for (const auto& [session, floor] : table) {
    sessions_[session].last_applied = floor;
  }
  // Dead stamps first: an id drawn past the committed high-water mark can
  // never be drawn (or committed) again, so any stamp naming it is a
  // permanent false positive. The tombstone is appended before any new
  // commit's stamp, so the same sync that could advance the high-water
  // mark past the dead id makes the tombstone durable first (prefix
  // durability); if it is lost with the crash, nothing after it was
  // durable either and the next rebuild re-derives it from the same
  // evidence.
  const uint64_t drawn = driver->txn_seq();
  for (const Stamp& stamp : stamps) {
    if (stamp.txn == 0 || stamp.txn <= high || stamp.txn > drawn) continue;
    if (!aborted.insert(stamp.txn).second) continue;
    std::vector<uint8_t> payload;
    PutU64(&payload, stamp.txn);
    VIEWMAT_RETURN_IF_ERROR(driver->recovery()->wal()->Append(
        db::RecoveryManager::kSessionAbort, payload.data(),
        static_cast<uint16_t>(payload.size())));
    Counter("net_session_aborts_total");
  }

  for (size_t i = 0; i < stamps.size(); ++i) {
    const Stamp& stamp = stamps[i];
    if (stamp.txn == 0 || stamp.txn > high) continue;
    if (aborted.count(stamp.txn) != 0) continue;
    if (last_stamp_for_txn[stamp.txn] != i) continue;
    ++stamps_recovered_;
    SessionState& s = sessions_[stamp.session];
    if (stamp.seq > s.last_applied) {
      s.last_applied = stamp.seq;
      s.cached = Message();
      s.cached.type = MsgType::kReply;
      s.cached.session_id = stamp.session;
      s.cached.seq_no = stamp.seq;
      s.cached.wstatus = WireStatus::kOk;
      s.cached.txn_id = stamp.txn;
      s.has_cached = true;
    }
    // The journal is the harness's in-memory ledger; it survives a device
    // crash, so only the commit in flight AT the crash can be missing.
    if (journal_index_.emplace(stamp.session, stamp.seq).second) {
      JournalEntry entry;
      entry.session = stamp.session;
      entry.seq = stamp.seq;
      entry.txn_id = stamp.txn;
      entry.victims = stamp.victims;
      entry.reconciled = true;
      journal_.push_back(std::move(entry));
      ++journal_reconciled_;
      ++commits_applied_;
      Counter("net_journal_reconciled_total");
    }
  }
  return Status::OK();
}

Status SessionServer::RebuildShadow() {
  sim::ViewMultiset base;
  VIEWMAT_RETURN_IF_ERROR(options_.driver->VisibleBase(&base));
  for (const auto& [tuple, count] : base) {
    (void)count;
    const int64_t key = tuple.at(workload::Scenario::kFieldK1).AsInt64();
    if (key < 0 || key >= shadow_.n) continue;
    shadow_.v[key] = tuple.at(workload::Scenario::kFieldV).AsDouble();
  }
  return Status::OK();
}

void SessionServer::ArmRefreshTick() {
  if (options_.refresh_every_ms <= 0.0 || refresh_tick_armed_ || down_) {
    return;
  }
  refresh_tick_armed_ = true;
  activity_since_tick_ = false;
  options_.events->Post(options_.refresh_every_ms,
                        [this]() { RefreshTick(); });
}

void SessionServer::RefreshTick() {
  refresh_tick_armed_ = false;
  if (down_) return;
  if (refresh_pending_ && refresh_link_up_) {
    // The previous ping was never acked: the refresh path is isolated.
    refresh_link_up_ = false;
    Counter("net_refresh_link_down_total");
  }
  refresh_pending_ = true;
  Message ping;
  ping.type = MsgType::kRefreshPing;
  ping.seq_no = ++refresh_ping_seq_;
  (void)options_.net->Send(options_.node, options_.refresher, ping);
  // Re-arm only while traffic keeps flowing, so an idle simulation's
  // event queue drains instead of ticking forever.
  if (activity_since_tick_) ArmRefreshTick();
}

}  // namespace viewmat::net
