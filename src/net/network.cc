#include "net/network.h"

#include <utility>

namespace viewmat::net {

Network::Network(Options options) : options_(options) {
  if (options_.tracer != nullptr) options_.tracer->SetClock(&clock_);
}

void Network::Register(NodeId id, Endpoint* endpoint) {
  endpoints_[id] = endpoint;
}

Random* Network::ChannelRng(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = channel_rng_.find(key);
  if (it == channel_rng_.end()) {
    // Per-channel seed derived from (seed, src, dst) only — never from
    // traffic order — so one link's latency stream is independent of the
    // rest of the simulation.
    const uint64_t seed = options_.seed ^
                          (0x9e3779b97f4a7c15ULL * (src + 1)) ^
                          (0xc2b2ae3d27d4eb4fULL * (dst + 1));
    it = channel_rng_.emplace(key, Random(seed | 1)).first;
  }
  return &it->second;
}

Status Network::Send(NodeId src, NodeId dst, const Message& msg,
                     double extra_delay_ms) {
  auto it = endpoints_.find(dst);
  if (it == endpoints_.end()) {
    return Status::InvalidArgument("no endpoint registered for node " +
                                   std::to_string(dst));
  }
  Endpoint* endpoint = it->second;
  Random* rng = ChannelRng(src, dst);
  const double latency = options_.base_latency_ms +
                         (options_.jitter_ms > 0.0
                              ? rng->NextDouble() * options_.jitter_ms
                              : 0.0) +
                         extra_delay_ms;
  // The wire carries bytes: encode at the sender, decode at delivery, so
  // the transport is an honest stand-in for a socket (and a corrupted or
  // version-skewed frame fails loudly at the receiver, not deep inside it).
  std::vector<uint8_t> frame = msg.Encode();
  ++sent_;
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("net_messages_sent_total")->Increment();
  }
  const obs::ScopedSpan span(options_.tracer, "net.send");
  Post(latency, [this, src, endpoint, frame = std::move(frame)]() {
    StatusOr<Message> decoded = Message::Decode(frame.data(), frame.size());
    if (!decoded.ok()) return;  // a corrupted frame is a silent drop
    ++delivered_;
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("net_messages_delivered_total")
          ->Increment();
    }
    endpoint->OnMessage(src, *decoded);
  });
  return Status::OK();
}

void Network::Post(double delay_ms, std::function<void()> fn) {
  Event e;
  e.at_ms = now_ms_ + (delay_ms < 0.0 ? 0.0 : delay_ms);
  e.seq = next_event_seq_++;
  e.fn = std::move(fn);
  events_.push(std::move(e));
}

bool Network::RunUntilIdle(size_t max_events) {
  while (!events_.empty()) {
    if (events_run_ >= max_events) return false;
    Event e = events_.top();
    events_.pop();
    if (e.at_ms > now_ms_) {
      now_ms_ = e.at_ms;
      clock_.ms_ = e.at_ms;
    }
    ++events_run_;
    e.fn();
  }
  return true;
}

}  // namespace viewmat::net
