#ifndef VIEWMAT_NET_SESSION_SERVER_H_
#define VIEWMAT_NET_SESSION_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/strategy_driver.h"

namespace viewmat::net {

/// FNV-1a digest of a counted tuple multiset — how query answers travel on
/// the wire (and how the chaos oracle compares them to expected answers).
uint64_t DigestMultiset(const sim::ViewMultiset& m);

/// The refresher-side endpoint: acknowledges kRefreshPing so the server
/// can observe refresh-link health. Partitioning this node away from the
/// server is how chaos runs isolate the refresh path and force degraded
/// reads.
class RefreshDaemon : public Endpoint {
 public:
  RefreshDaemon(NodeId node, NetworkInterface* net)
      : node_(node), net_(net) {}

  void OnMessage(NodeId from, const Message& msg) override;

  uint64_t pings_acked() const { return pings_acked_; }

 private:
  NodeId node_;
  NetworkInterface* net_;
  uint64_t pings_acked_ = 0;
};

/// Request/response front end over a StrategyDriver engine: the
/// exactly-once half of the wire protocol.
///
/// ## Dedup (exactly-once effects over at-least-once delivery)
///
/// Every request carries (session_id, seq_no); the server keeps, per
/// session, the last applied seq and the cached reply for it. A
/// redelivered seq <= last_applied is answered from cache — never
/// re-executed — so client retries are harmless no matter how the network
/// mangles delivery. Duplicates are filtered BOTH at admission and again
/// at execution (two copies of one commit can both be sitting in the
/// queue). Sessions are keyed by the client's node id, so a server that
/// lost a session (bounded table, restart) resurrects it on first contact;
/// seq gaps are accepted (a lost query's ack is side-effect-free).
///
/// ## Durable stamps (a crash cannot forget an acknowledged commit)
///
/// Before a commit executes, the server appends a kSessionStamp —
/// (session, seq, predicted txn id, the victim deltas) — to the
/// RecoveryManager's WAL. For strategies that commit through that WAL the
/// commit's own sync makes the stamp durable first (prefix durability);
/// for deferred/hybrid (which commit through the AD log) the stamp is
/// synced explicitly before the commit starts. After a crash,
/// RebuildSessions() scans the WAL: a stamp is believed iff its txn id is
/// <= the recovered committed high-water mark AND it is the last stamp in
/// log order naming that txn id (a failed attempt's predicted id can be
/// re-predicted by a later attempt; only the attempt that actually
/// consumed the id stamps it last). Valid stamps restore the dedup floor
/// and reconcile the commit journal, so an acked commit is never lost and
/// a client retry of it is answered from cache, never re-applied. The
/// dedup table itself rides checkpoints as a kSessionTable record in the
/// same atomic truncation (RecoveryManager::Checkpoint extras), bounding
/// the WAL scan.
///
/// ## Ambiguity, crashes, degradation
///
/// A failed commit whose transaction id provably never advanced is
/// answered kRejected (the client retries the same seq). Any outcome the
/// server cannot prove on the spot — sync error, crash mid-commit — routes
/// through EnterCrashed(): queued requests are dropped (clients time out
/// and retry), and a restart event later re-opens the engine via
/// Restart + DiscardVolatileWal + Recover + RebuildSessions, which
/// resolves the ambiguity against durable state. Admission control sheds
/// load above Options::max_inflight with kOverloaded replies. A periodic
/// refresh ping watches the server→refresher link; while it is unacked
/// (partitioned), query replies are flagged degraded.
class SessionServer : public Endpoint {
 public:
  /// One applied commit, in application order — the server-side ledger the
  /// chaos oracle audits. `reconciled` marks entries restored from WAL
  /// stamps after a crash rather than observed live.
  struct JournalEntry {
    uint64_t session = 0;
    uint64_t seq = 0;
    uint64_t txn_id = 0;
    std::vector<std::pair<int64_t, double>> victims;
    bool reconciled = false;
  };

  struct Options {
    /// The engine. Not owned; must outlive the server.
    sim::StrategyDriver* driver = nullptr;
    /// Event loop / timer source (owns virtual time). Not owned.
    Network* events = nullptr;
    /// Reply path — the faulty decorator in chaos runs. Not owned.
    NetworkInterface* net = nullptr;
    NodeId node = 0;
    NodeId refresher = 1;
    /// Admission bound: queued + executing requests beyond this are shed
    /// with kOverloaded.
    size_t max_inflight = 8;
    /// Dedup-table bound (sessions resurrect on demand, so eviction is
    /// bounded-memory housekeeping, not correctness).
    size_t max_sessions = 64;
    /// Applied commits between dedup-table checkpoints (0 = never).
    size_t checkpoint_every = 16;
    /// Virtual time from crash to the first restart attempt.
    double restart_delay_ms = 30.0;
    /// Refresh-link ping cadence (0 = no pings, link assumed healthy).
    /// Pings re-arm only while requests keep arriving, so an idle server
    /// lets the event queue drain.
    double refresh_every_ms = 50.0;
    obs::MetricsRegistry* metrics = nullptr;  ///< may be null
    obs::Tracer* tracer = nullptr;            ///< may be null
  };

  /// Validates options (named-field errors) and builds the server with its
  /// shadow of the engine's updatable column.
  static StatusOr<std::unique_ptr<SessionServer>> Create(
      const Options& options);

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  void OnMessage(NodeId from, const Message& msg) override;

  // --- Oracle / test introspection ----------------------------------------
  const std::vector<JournalEntry>& journal() const { return journal_; }
  bool down() const { return down_; }
  bool refresh_link_up() const { return refresh_link_up_; }
  sim::StrategyDriver* driver() { return options_.driver; }

  uint64_t commits_applied() const { return commits_applied_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t redelivered_hits() const { return redelivered_hits_; }
  uint64_t shed_requests() const { return shed_requests_; }
  uint64_t rejected_commits() const { return rejected_commits_; }
  uint64_t ambiguous_resolved() const { return ambiguous_resolved_; }
  uint64_t session_checkpoints() const { return session_checkpoints_; }
  uint64_t stamps_recovered() const { return stamps_recovered_; }
  uint64_t journal_reconciled() const { return journal_reconciled_; }
  uint64_t degraded_replies() const { return degraded_replies_; }
  uint64_t dropped_while_down() const { return dropped_while_down_; }

 private:
  struct SessionState {
    uint64_t last_applied = 0;
    bool has_cached = false;
    Message cached;  ///< reply for seq == last_applied
  };

  /// What one commit attempt concluded.
  enum class CommitOutcome {
    kCommitted,     ///< applied; txn id known
    kNotCommitted,  ///< provably not applied; safe to reply kRejected
    kCrash,         ///< unknowable live — EnterCrashed resolves it durably
  };

  explicit SessionServer(const Options& options);

  void HandleRequest(NodeId from, const Message& msg);
  void StartNext();
  /// Executes one admitted request; fills `reply` and the model service
  /// time. Returns false when the server crashed mid-execution (no reply).
  bool Execute(const Message& msg, Message* reply, double* service_ms);
  CommitOutcome ApplyCommit(const Message& msg, uint64_t* txn_id);
  /// Records an applied commit: journal, dedup floor, shadow advance.
  void RecordApplied(const Message& msg, uint64_t txn_id,
                     const Message& reply);
  db::Transaction BuildTxn(
      const std::vector<std::pair<int64_t, double>>& victims,
      std::map<int64_t, double>* staged) const;

  void EnterCrashed();
  void AttemptRestart();
  Status RebuildSessions();
  Status RebuildShadow();
  Status MaybeSessionCheckpoint();

  void ArmRefreshTick();
  void RefreshTick();

  SessionState* Session(uint64_t session_id);
  void Reply(NodeId dst, const Message& reply, double delay_ms = 0.0);
  void Counter(const char* name);

  Options options_;
  sim::ShadowOracle shadow_;

  bool down_ = false;
  uint64_t epoch_ = 0;  ///< bumped per crash; stale events check it
  bool processing_ = false;
  std::deque<std::pair<NodeId, Message>> queue_;
  std::map<uint64_t, SessionState> sessions_;
  std::vector<JournalEntry> journal_;
  std::set<std::pair<uint64_t, uint64_t>> journal_index_;
  uint64_t commits_since_checkpoint_ = 0;

  bool refresh_tick_armed_ = false;
  bool refresh_pending_ = false;
  bool refresh_link_up_ = true;
  bool activity_since_tick_ = false;
  uint64_t refresh_ping_seq_ = 0;
  int restart_round_ = 0;

  uint64_t commits_applied_ = 0;
  uint64_t crashes_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t redelivered_hits_ = 0;
  uint64_t shed_requests_ = 0;
  uint64_t rejected_commits_ = 0;
  uint64_t ambiguous_resolved_ = 0;
  uint64_t session_checkpoints_ = 0;
  uint64_t stamps_recovered_ = 0;
  uint64_t journal_reconciled_ = 0;
  uint64_t degraded_replies_ = 0;
  uint64_t dropped_while_down_ = 0;
};

}  // namespace viewmat::net

#endif  // VIEWMAT_NET_SESSION_SERVER_H_
