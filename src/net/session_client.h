#ifndef VIEWMAT_NET_SESSION_CLIENT_H_
#define VIEWMAT_NET_SESSION_CLIENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace viewmat::net {

/// One operation a client will push through its session, in order.
struct ClientOp {
  bool is_update = false;
  /// Update: per-key payload deltas (relative, so a duplicated application
  /// would be visible — deltas are deliberately NOT idempotent).
  std::vector<std::pair<int64_t, double>> victims;
  /// Query: inclusive key range.
  int64_t lo = 0;
  int64_t hi = 0;
};

/// The client-side record of one acknowledged operation — the raw material
/// of the chaos oracle's ledger (acked commits must appear exactly once;
/// acked query answers must match the journal prefix they were served at).
struct ClientOpResult {
  bool is_update = false;
  uint64_t seq_no = 0;
  uint32_t attempts = 1;  ///< sends it took to get this ack
  // Update acks:
  uint64_t txn_id = 0;
  std::vector<std::pair<int64_t, double>> victims;
  // Query acks:
  int64_t lo = 0;
  int64_t hi = 0;
  uint64_t answer_digest = 0;
  uint64_t journal_len = 0;  ///< server journal length the answer reflects
  bool degraded = false;
};

/// The at-least-once half of the exactly-once contract: a sessioned client
/// that stamps every request with (session_id, seq_no), retries on timeout
/// with seeded exponential backoff + jitter, and ignores stale replies.
/// The client NEVER gives up on an operation — convergence is the fault
/// injector's job (fault budgets and healing partitions), and the chaos
/// oracle's liveness check is precisely "did every client finish".
///
/// Session protocol: seq 0 opens the session (the session id is the
/// client's node id, so a server that lost the session can resurrect it);
/// operation i travels as seq i+1. A reply for the current seq advances
/// the client; kOverloaded/kRejected replies re-send the SAME seq after a
/// backoff (the server's dedup table makes the re-send safe).
class SessionClient : public Endpoint {
 public:
  struct Options {
    NodeId node = 2;
    NodeId server = 0;
    /// Event loop and timer source (owns virtual time). Not owned.
    Network* events = nullptr;
    /// Send path — the faulty decorator in chaos runs. Not owned.
    NetworkInterface* net = nullptr;
    uint64_t seed = 1;
    /// First-attempt retry timeout; grows by backoff_factor per attempt,
    /// capped at max_backoff_ms, jittered by ±jitter_frac (seeded).
    double timeout_ms = 10.0;
    double backoff_factor = 2.0;
    double max_backoff_ms = 160.0;
    double jitter_frac = 0.25;
    obs::Tracer* tracer = nullptr;        ///< net.retry spans (may be null)
    obs::MetricsRegistry* metrics = nullptr;  ///< may be null
  };

  SessionClient(const Options& options, std::vector<ClientOp> ops);

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  /// Queues the session-open send; the event loop does the rest.
  void Start();

  bool done() const { return done_; }
  const std::vector<ClientOpResult>& acked() const { return acked_; }

  uint64_t retries() const { return retries_; }
  uint64_t stale_replies() const { return stale_replies_; }
  uint64_t overloaded_replies() const { return overloaded_replies_; }
  uint64_t rejected_replies() const { return rejected_replies_; }

  void OnMessage(NodeId from, const Message& msg) override;

 private:
  /// seq the client is currently waiting on (0 = session open).
  uint64_t CurrentSeq() const { return opened_ ? cur_ + 1 : 0; }
  Message BuildCurrent() const;
  void SendCurrent();
  /// Backoff for the current attempt: exponential, capped, jittered.
  double BackoffMs();
  /// Re-send the current seq after a backoff (negative ack path).
  void ScheduleResend();
  void Advance(const Message& reply);

  Options options_;
  std::vector<ClientOp> ops_;
  Random rng_;

  bool started_ = false;
  bool opened_ = false;
  bool done_ = false;
  size_t cur_ = 0;        ///< index into ops_ (valid once opened_)
  uint32_t attempt_ = 1;  ///< attempt number for the current seq
  /// Transmission generation: bumped on every (re)send and on advance, so
  /// in-flight timeout events can detect they are stale and do nothing.
  uint64_t xmit_id_ = 0;

  std::vector<ClientOpResult> acked_;
  uint64_t retries_ = 0;
  uint64_t stale_replies_ = 0;
  uint64_t overloaded_replies_ = 0;
  uint64_t rejected_replies_ = 0;
};

}  // namespace viewmat::net

#endif  // VIEWMAT_NET_SESSION_CLIENT_H_
