#ifndef VIEWMAT_NET_CHAOS_ORACLE_H_
#define VIEWMAT_NET_CHAOS_ORACLE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "costmodel/params.h"
#include "sim/strategy_driver.h"

namespace viewmat::sim {

/// Fault profiles the chaos oracle sweeps. Each profile arms one class of
/// transport mischief (plus a crash composite); the oracle's invariants
/// must hold under every one of them.
enum class ChaosProfile {
  kClean,      ///< healthy network — the baseline that must be flawless
  kDrop,       ///< messages vanish (budgeted)
  kDuplicate,  ///< messages delivered twice
  kReorder,    ///< latency inversions let later messages overtake
  kDelay,      ///< large per-message extra latency
  kPartition,  ///< scripted partition windows (incl. one-way links and the
               ///< refresh path)
  kCrashPartition,  ///< partitions plus scripted server crashes
};

inline constexpr ChaosProfile kAllChaosProfiles[] = {
    ChaosProfile::kClean,     ChaosProfile::kDrop,
    ChaosProfile::kDuplicate, ChaosProfile::kReorder,
    ChaosProfile::kDelay,     ChaosProfile::kPartition,
    ChaosProfile::kCrashPartition,
};

const char* ChaosProfileName(ChaosProfile profile);

struct ChaosOracleOptions {
  StrategyKind kind = StrategyKind::kDeferred;
  int model = 1;
  costmodel::Params params;
  bool shrink_params = true;  ///< apply TortureParams (the default)
  ChaosProfile profile = ChaosProfile::kClean;
  uint64_t seed = 1;  ///< base seed; run r uses a derived seed
  int runs = 4;       ///< seeded runs to execute for this cell
  size_t jobs = 1;    ///< worker fan-out across runs (merge is ordered)
  int clients = 3;
  int ops_per_client = 12;
  /// Probability an op is a commit (the rest are range queries).
  double update_fraction = 0.7;
  /// Event-loop cap per run — the liveness bound: a protocol that retries
  /// forever trips it and the run is declared not live.
  size_t max_events = 400000;
};

/// Aggregated verdict over all runs of one (profile, strategy, model)
/// cell. The invariant counters on the right of the struct MUST all be
/// zero for the cell to pass (see Clean()).
struct ChaosOracleResult {
  // Volume / behavior counters (informational).
  uint64_t runs = 0;
  uint64_t acked_commits = 0;
  uint64_t acked_queries = 0;
  uint64_t degraded_query_acks = 0;
  uint64_t client_retries = 0;
  uint64_t redelivered_hits = 0;
  uint64_t rejected_commits = 0;
  uint64_t ambiguous_resolved = 0;
  uint64_t shed_requests = 0;
  uint64_t server_crashes = 0;
  uint64_t server_recoveries = 0;
  uint64_t journal_reconciled = 0;
  uint64_t session_checkpoints = 0;
  uint64_t messages_sent = 0;
  uint64_t faults_injected = 0;

  // Invariant violations (each must stay zero).
  uint64_t liveness_failures = 0;   ///< run never drained / clients stuck
  uint64_t lost_commits = 0;        ///< acked commit missing from journal
  uint64_t duplicate_applications = 0;  ///< journal holds a (session,seq) twice
  uint64_t state_mismatches = 0;    ///< final base ≠ delta-ledger replay
  uint64_t replay_mismatches = 0;   ///< digest ≠ serial replay of journal
  uint64_t query_mismatches = 0;    ///< acked query ≠ its journal prefix
  uint64_t corrupt_runs = 0;        ///< engine never quiesced

  /// True iff every invariant held in every run.
  bool Clean() const {
    return liveness_failures == 0 && lost_commits == 0 &&
           duplicate_applications == 0 && state_mismatches == 0 &&
           replay_mismatches == 0 && query_mismatches == 0 &&
           corrupt_runs == 0;
  }

  std::string ToString() const;
};

/// Runs `options.runs` seeded chaos runs of one fault-profile cell: a
/// SessionServer-fronted engine, N retrying clients, and a FaultyNetwork
/// armed per the profile — then audits the exactly-once contract:
///
///  1. liveness — every client finishes and the event queue drains;
///  2. ledger — the set of client-acknowledged commits equals the server
///     journal exactly (nothing lost, nothing applied twice);
///  3. state — the final visible base equals the initial state advanced by
///     the journal's deltas in order, and a serial replay of the journal
///     through a fresh engine converges to a state-digest match;
///  4. reads — every acknowledged query answer equals the exact expected
///     answer at the journal prefix it was served at.
///
/// Runs fan out over `options.jobs` workers and merge in run order, so the
/// result is identical at any worker count.
StatusOr<ChaosOracleResult> RunChaosOracle(const ChaosOracleOptions& options);

}  // namespace viewmat::sim

#endif  // VIEWMAT_NET_CHAOS_ORACLE_H_
