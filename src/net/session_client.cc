#include "net/session_client.h"

#include <algorithm>

#include "common/logging.h"

namespace viewmat::net {

SessionClient::SessionClient(const Options& options, std::vector<ClientOp> ops)
    : options_(options), ops_(std::move(ops)), rng_(options.seed | 1) {
  VIEWMAT_CHECK(options_.events != nullptr);
  VIEWMAT_CHECK(options_.net != nullptr);
}

void SessionClient::Start() {
  if (started_) return;
  started_ = true;
  // Even with no ops the session is opened (and done on the ack) — the
  // handshake path is always exercised.
  SendCurrent();
}

Message SessionClient::BuildCurrent() const {
  Message m;
  m.session_id = options_.node;
  m.seq_no = CurrentSeq();
  m.attempt = attempt_;
  if (!opened_) {
    m.type = MsgType::kOpenSession;
    return m;
  }
  const ClientOp& op = ops_[cur_];
  if (op.is_update) {
    m.type = MsgType::kCommit;
    m.victims = op.victims;
  } else {
    m.type = MsgType::kQuery;
    m.lo = op.lo;
    m.hi = op.hi;
  }
  return m;
}

double SessionClient::BackoffMs() {
  double backoff = options_.timeout_ms;
  for (uint32_t i = 1; i < attempt_ && backoff < options_.max_backoff_ms; ++i) {
    backoff *= options_.backoff_factor;
  }
  backoff = std::min(backoff, options_.max_backoff_ms);
  // Seeded jitter in ±jitter_frac de-synchronizes client retry storms
  // without sacrificing run-to-run determinism.
  const double jitter = (rng_.NextDouble() * 2.0 - 1.0) * options_.jitter_frac;
  return backoff * (1.0 + jitter);
}

void SessionClient::SendCurrent() {
  const uint64_t xid = ++xmit_id_;
  // Send errors are indistinguishable from a lost message: the timeout
  // below retries either way.
  (void)options_.net->Send(options_.node, options_.server, BuildCurrent());
  const double timeout = BackoffMs();
  options_.events->Post(timeout, [this, xid]() {
    if (done_ || xid != xmit_id_) return;  // superseded by a reply
    ++retries_;
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("net_client_retries_total")->Increment();
    }
    const obs::ScopedSpan span(options_.tracer, "net.retry");
    ++attempt_;
    SendCurrent();
  });
}

void SessionClient::ScheduleResend() {
  const uint64_t xid = ++xmit_id_;  // invalidates the pending timeout
  ++attempt_;
  options_.events->Post(BackoffMs(), [this, xid]() {
    if (done_ || xid != xmit_id_) return;
    SendCurrent();
  });
}

void SessionClient::Advance(const Message& reply) {
  if (!opened_) {
    opened_ = true;
  } else {
    const ClientOp& op = ops_[cur_];
    ClientOpResult r;
    r.is_update = op.is_update;
    r.seq_no = reply.seq_no;
    r.attempts = attempt_;
    if (op.is_update) {
      r.txn_id = reply.txn_id;
      r.victims = op.victims;
    } else {
      r.lo = op.lo;
      r.hi = op.hi;
      r.answer_digest = reply.answer_digest;
      r.journal_len = reply.journal_len;
      r.degraded = reply.degraded;
    }
    acked_.push_back(std::move(r));
    ++cur_;
  }
  attempt_ = 1;
  ++xmit_id_;  // kill the outstanding timeout
  if ((opened_ ? cur_ : 0) >= ops_.size() && opened_) {
    done_ = true;
    return;
  }
  SendCurrent();
}

void SessionClient::OnMessage(NodeId from, const Message& msg) {
  (void)from;
  if (done_) {
    ++stale_replies_;
    return;
  }
  const bool is_reply = msg.type == MsgType::kReply ||
                        msg.type == MsgType::kOpenAck;
  // A redelivered reply for an already-acked seq (or a kOpenAck after the
  // session is open) is stale: count it and move on.
  if (!is_reply || msg.seq_no != CurrentSeq() ||
      (msg.type == MsgType::kOpenAck) == opened_) {
    ++stale_replies_;
    return;
  }
  switch (msg.wstatus) {
    case WireStatus::kOk:
      Advance(msg);
      return;
    case WireStatus::kOverloaded:
      ++overloaded_replies_;
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("net_client_overloaded_total")
            ->Increment();
      }
      ScheduleResend();
      return;
    case WireStatus::kRejected:
      // The server could not prove the commit landed (or shed the request
      // mid-crash); the dedup table makes re-sending the same seq safe.
      ++rejected_replies_;
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter("net_client_rejected_total")->Increment();
      }
      ScheduleResend();
      return;
  }
}

}  // namespace viewmat::net
