#include "net/chaos_oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "net/faulty_network.h"
#include "net/network.h"
#include "net/session_client.h"
#include "net/session_server.h"
#include "server/schedule.h"
#include "workload/workload.h"

namespace viewmat::sim {

namespace {

using net::ClientOp;
using net::ClientOpResult;
using net::FaultyNetwork;
using net::Network;
using net::NodeId;
using net::RefreshDaemon;
using net::SessionClient;
using net::SessionServer;

constexpr NodeId kServerNode = 0;
constexpr NodeId kRefresherNode = 1;
constexpr NodeId kFirstClientNode = 2;

/// Engine quiesce attempts at end of run (crash scripts are one-shot, so
/// a few restart rounds always reach a healthy device).
constexpr int kMaxQuiesceAttempts = 8;

uint64_t RunSeed(uint64_t base, int run) {
  uint64_t s = base ^ (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(run) + 2));
  s ^= s >> 33;
  return s | 1;
}

uint64_t ClientSeed(uint64_t run_seed, int client) {
  uint64_t s = run_seed ^
               (0xc2b2ae3d27d4eb4full * (static_cast<uint64_t>(client) + 2));
  s ^= s >> 29;
  return s | 1;
}

/// The staged-update rule shared with the server: within one transaction a
/// key hit twice sees its own earlier write.
db::Transaction BuildDeltaTxn(
    const ShadowOracle& shadow, db::Relation* rel,
    const std::vector<std::pair<int64_t, double>>& victims,
    std::map<int64_t, double>* staged) {
  db::Transaction txn;
  for (const auto& [key, delta] : victims) {
    const double old_v = staged->count(key) ? (*staged)[key] : shadow.v[key];
    const double new_v = old_v + delta;
    db::Tuple old_t = shadow.BaseTuple(key);
    old_t.at(workload::Scenario::kFieldV) = db::Value(old_v);
    db::Tuple new_t = old_t;
    new_t.at(workload::Scenario::kFieldV) = db::Value(new_v);
    txn.Update(rel, old_t, new_t);
    (*staged)[key] = new_v;
  }
  return txn;
}

void AdvanceByVictims(
    const std::vector<std::pair<int64_t, double>>& victims,
    ShadowOracle* shadow) {
  for (const auto& [key, delta] : victims) shadow->v[key] += delta;
}

/// Arms the fault decorator for one profile. All windows and rates derive
/// from `prng`, so the whole failure schedule is a function of the run
/// seed.
void ArmProfile(ChaosProfile profile, int clients, Random* prng,
                FaultyNetwork* faulty) {
  switch (profile) {
    case ChaosProfile::kClean:
      break;
    case ChaosProfile::kDrop:
      faulty->set_drop_rate(0.12);
      faulty->set_max_faults(48);
      break;
    case ChaosProfile::kDuplicate:
      faulty->set_duplicate_rate(0.2);
      faulty->set_max_faults(64);
      break;
    case ChaosProfile::kReorder:
      faulty->set_reorder_rate(0.35);
      faulty->set_delay_ms(10.0);
      faulty->set_max_faults(96);
      break;
    case ChaosProfile::kDelay:
      faulty->set_delay_rate(0.35);
      faulty->set_delay_ms(30.0);
      faulty->set_max_faults(96);
      break;
    case ChaosProfile::kPartition:
    case ChaosProfile::kCrashPartition: {
      // Isolate the refresh path (degraded reads) ...
      const double t0 = 30.0 + prng->NextDouble() * 40.0;
      faulty->AddPartition(t0, t0 + 60.0 + prng->NextDouble() * 40.0,
                           kServerNode, kRefresherNode);
      // ... cut one client off entirely for a window ...
      const NodeId victim =
          kFirstClientNode + static_cast<NodeId>(prng->Uniform(clients));
      const double t1 = 20.0 + prng->NextDouble() * 50.0;
      faulty->AddPartition(t1, t1 + 40.0 + prng->NextDouble() * 40.0,
                           kServerNode, victim);
      // ... and fail one reply direction only: requests arrive, acks are
      // lost — the pure dedup workout.
      const NodeId one_way =
          kFirstClientNode + static_cast<NodeId>(prng->Uniform(clients));
      const double t2 = 50.0 + prng->NextDouble() * 60.0;
      faulty->AddPartition(t2, t2 + 30.0 + prng->NextDouble() * 30.0,
                           kServerNode, one_way, /*one_way=*/true);
      break;
    }
  }
}

Status RunOneChaos(const ChaosOracleOptions& options,
                   const costmodel::Params& params, int run,
                   ChaosOracleResult* agg) {
  const uint64_t run_seed = RunSeed(options.seed, run);

  StrategyDriver::Options dopt;
  dopt.kind = options.kind;
  dopt.model = options.model;
  dopt.params = params;
  dopt.seed = run_seed;
  dopt.checkpoint_every = 0;  // the session server drives checkpoints
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<StrategyDriver> driver,
                           StrategyDriver::Create(dopt));
  const ShadowOracle shadow0 = MakeShadow(*driver->scenario());

  Network::Options nopt;
  nopt.seed = run_seed;
  Network network(nopt);
  FaultyNetwork faulty(&network, network.clock(), run_seed ^ 0x5bd1e995u);
  Random prng(run_seed ^ 0x2545f4914f6cdd1dull);
  ArmProfile(options.profile, options.clients, &prng, &faulty);

  RefreshDaemon refresher(kRefresherNode, &faulty);
  network.Register(kRefresherNode, &refresher);

  SessionServer::Options sopt;
  sopt.driver = driver.get();
  sopt.events = &network;
  sopt.net = &faulty;
  sopt.node = kServerNode;
  sopt.refresher = kRefresherNode;
  sopt.max_inflight = 8;
  sopt.max_sessions = 64;
  sopt.checkpoint_every = 6;
  sopt.restart_delay_ms = 25.0;
  sopt.refresh_every_ms = 40.0;
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<SessionServer> server,
                           SessionServer::Create(sopt));
  network.Register(kServerNode, server.get());

  // Scripted server crashes ride the virtual clock: at a seeded time the
  // disk arms a relative crash script, so the crash lands wherever the
  // protocol happens to be — including inside a partition window.
  if (options.profile == ChaosProfile::kCrashPartition) {
    for (int c = 0; c < 2; ++c) {
      const double at = 20.0 + prng.NextDouble() * 80.0 + c * 90.0;
      const uint64_t ops_ahead = 1 + prng.Uniform(8);
      storage::FaultyDisk* disk = driver->disk();
      network.Post(at, [disk, ops_ahead]() {
        disk->ScriptCrashAtOp(ops_ahead);
      });
    }
  }

  // Clients: seeded op lists of delta-commits and range queries. Deltas
  // are integer-valued doubles, so per-key sums are exact and a duplicate
  // application can never hide behind rounding.
  const int64_t n = shadow0.n;
  std::vector<std::unique_ptr<SessionClient>> clients;
  for (int c = 0; c < options.clients; ++c) {
    const uint64_t cseed = ClientSeed(run_seed, c);
    Random crng(cseed);
    std::vector<ClientOp> ops;
    for (int i = 0; i < options.ops_per_client; ++i) {
      ClientOp op;
      op.is_update = crng.NextDouble() < options.update_fraction;
      if (op.is_update) {
        const int nv = 1 + static_cast<int>(crng.Uniform(3));
        for (int v = 0; v < nv; ++v) {
          const int64_t key = static_cast<int64_t>(crng.Uniform(n));
          const double delta = static_cast<double>(1 + crng.Uniform(9));
          op.victims.emplace_back(key, delta);
        }
      } else {
        op.lo = static_cast<int64_t>(crng.Uniform(n));
        op.hi = op.lo + static_cast<int64_t>(
                            crng.Uniform(std::max<int64_t>(1, n / 2)));
      }
      ops.push_back(std::move(op));
    }
    SessionClient::Options copt;
    copt.node = kFirstClientNode + static_cast<NodeId>(c);
    copt.server = kServerNode;
    copt.events = &network;
    copt.net = &faulty;
    copt.seed = cseed;
    copt.timeout_ms = 80.0;
    copt.max_backoff_ms = 640.0;
    auto client = std::make_unique<SessionClient>(copt, std::move(ops));
    network.Register(copt.node, client.get());
    clients.push_back(std::move(client));
  }
  for (auto& client : clients) client->Start();

  // ---- Run to the wire's quiescence -------------------------------------
  const bool drained = network.RunUntilIdle(options.max_events);
  bool all_done = true;
  for (const auto& client : clients) all_done &= client->done();

  agg->runs += 1;
  agg->client_retries += [&] {
    uint64_t total = 0;
    for (const auto& client : clients) total += client->retries();
    return total;
  }();
  agg->redelivered_hits += server->redelivered_hits();
  agg->rejected_commits += server->rejected_commits();
  agg->ambiguous_resolved += server->ambiguous_resolved();
  agg->shed_requests += server->shed_requests();
  agg->server_crashes += server->crashes();
  agg->server_recoveries += server->recoveries();
  agg->journal_reconciled += server->journal_reconciled();
  agg->session_checkpoints += server->session_checkpoints();
  agg->messages_sent += network.sent();
  agg->faults_injected += faulty.faults_injected();

  if (!drained || !all_done) {
    ++agg->liveness_failures;
    return Status::OK();  // nothing left to audit on a stuck run
  }

  // ---- Quiesce the engine (heal everything, converge) --------------------
  driver->disk()->ClearFaults();
  faulty.ClearFaults();
  Status converged = Status::Internal("not attempted");
  for (int attempt = 0; attempt < kMaxQuiesceAttempts && !converged.ok();
       ++attempt) {
    if (driver->disk()->crashed()) {
      driver->disk()->Restart();
      converged = driver->DiscardVolatileWal();
      if (converged.ok()) converged = driver->recovery()->DiscardVolatileWal();
      if (!converged.ok()) continue;
    }
    converged = driver->Converge();
  }
  if (!converged.ok()) {
    ++agg->corrupt_runs;
    return Status::OK();
  }

  // ---- Invariant 2: the exactly-once ledger ------------------------------
  std::multiset<std::pair<uint64_t, uint64_t>> journal_ids;
  for (const auto& entry : server->journal()) {
    journal_ids.emplace(entry.session, entry.seq);
  }
  std::set<std::pair<uint64_t, uint64_t>> journal_unique(journal_ids.begin(),
                                                         journal_ids.end());
  if (journal_unique.size() != journal_ids.size()) {
    ++agg->duplicate_applications;
  }
  std::set<std::pair<uint64_t, uint64_t>> acked_ids;
  for (size_t c = 0; c < clients.size(); ++c) {
    const uint64_t session = kFirstClientNode + c;
    for (const ClientOpResult& r : clients[c]->acked()) {
      if (r.is_update) {
        ++agg->acked_commits;
        acked_ids.emplace(session, r.seq_no);
      } else {
        ++agg->acked_queries;
        if (r.degraded) ++agg->degraded_query_acks;
      }
    }
  }
  if (acked_ids != journal_unique) ++agg->lost_commits;

  // ---- Invariant 3a: final state equals the delta ledger -----------------
  ShadowOracle ledger = shadow0;
  for (const auto& entry : server->journal()) {
    AdvanceByVictims(entry.victims, &ledger);
  }
  ViewMultiset want_base;
  for (int64_t key = 0; key < ledger.n; ++key) {
    want_base[ledger.BaseTuple(key)] += 1;
  }
  ViewMultiset got_base;
  VIEWMAT_RETURN_IF_ERROR(driver->VisibleBase(&got_base));
  if (got_base != want_base) ++agg->state_mismatches;

  // ---- Invariant 3b: serial replay of the journal ------------------------
  VIEWMAT_ASSIGN_OR_RETURN(const uint64_t final_digest,
                           server::StateDigest(driver.get()));
  StrategyDriver::Options ropt = dopt;
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<StrategyDriver> replay,
                           StrategyDriver::Create(ropt));
  ShadowOracle replay_shadow = MakeShadow(*replay->scenario());
  bool replay_failed = false;
  for (const auto& entry : server->journal()) {
    std::map<int64_t, double> staged;
    const db::Transaction txn =
        BuildDeltaTxn(replay_shadow, replay->base(), entry.victims, &staged);
    if (!replay->OnTransaction(txn).ok()) {
      replay_failed = true;
      break;
    }
    for (const auto& [key, v] : staged) replay_shadow.v[key] = v;
  }
  if (replay_failed || !replay->Converge().ok()) {
    ++agg->replay_mismatches;
  } else {
    VIEWMAT_ASSIGN_OR_RETURN(const uint64_t replay_digest,
                             server::StateDigest(replay.get()));
    if (replay_digest != final_digest) ++agg->replay_mismatches;
  }

  // ---- Invariant 4: acked queries match their journal prefix -------------
  struct AckedQuery {
    uint64_t journal_len;
    int64_t lo, hi;
    uint64_t digest;
  };
  std::vector<AckedQuery> queries;
  for (const auto& client : clients) {
    for (const ClientOpResult& r : client->acked()) {
      if (!r.is_update) {
        queries.push_back({r.journal_len, r.lo, r.hi, r.answer_digest});
      }
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const AckedQuery& a, const AckedQuery& b) {
              return a.journal_len < b.journal_len;
            });
  ShadowOracle prefix = shadow0;
  size_t applied = 0;
  for (const AckedQuery& q : queries) {
    if (q.journal_len > server->journal().size()) {
      ++agg->query_mismatches;
      continue;
    }
    while (applied < q.journal_len) {
      AdvanceByVictims(server->journal()[applied].victims, &prefix);
      ++applied;
    }
    const uint64_t want = net::DigestMultiset(
        ExpectedRange(prefix, options.model, q.lo, q.hi));
    if (want != q.digest) ++agg->query_mismatches;
  }
  return Status::OK();
}

}  // namespace

const char* ChaosProfileName(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kClean: return "clean";
    case ChaosProfile::kDrop: return "drop";
    case ChaosProfile::kDuplicate: return "duplicate";
    case ChaosProfile::kReorder: return "reorder";
    case ChaosProfile::kDelay: return "delay";
    case ChaosProfile::kPartition: return "partition";
    case ChaosProfile::kCrashPartition: return "crash_partition";
  }
  return "?";
}

std::string ChaosOracleResult::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%llu runs: %llu acked commits, %llu acked queries (%llu degraded), "
      "%llu retries, %llu redeliveries, %llu crashes/%llu recoveries, "
      "%llu reconciled | lost=%llu dup=%llu state=%llu replay=%llu "
      "query=%llu live_fail=%llu corrupt=%llu",
      static_cast<unsigned long long>(runs),
      static_cast<unsigned long long>(acked_commits),
      static_cast<unsigned long long>(acked_queries),
      static_cast<unsigned long long>(degraded_query_acks),
      static_cast<unsigned long long>(client_retries),
      static_cast<unsigned long long>(redelivered_hits),
      static_cast<unsigned long long>(server_crashes),
      static_cast<unsigned long long>(server_recoveries),
      static_cast<unsigned long long>(journal_reconciled),
      static_cast<unsigned long long>(lost_commits),
      static_cast<unsigned long long>(duplicate_applications),
      static_cast<unsigned long long>(state_mismatches),
      static_cast<unsigned long long>(replay_mismatches),
      static_cast<unsigned long long>(query_mismatches),
      static_cast<unsigned long long>(liveness_failures),
      static_cast<unsigned long long>(corrupt_runs));
  return buf;
}

StatusOr<ChaosOracleResult> RunChaosOracle(const ChaosOracleOptions& options) {
  if (options.runs <= 0) {
    return Status::InvalidArgument("ChaosOracleOptions::runs must be > 0");
  }
  if (options.clients <= 0) {
    return Status::InvalidArgument("ChaosOracleOptions::clients must be > 0");
  }
  if (options.ops_per_client <= 0) {
    return Status::InvalidArgument(
        "ChaosOracleOptions::ops_per_client must be > 0");
  }
  const costmodel::Params params =
      options.shrink_params ? TortureParams(options.params) : options.params;
  VIEWMAT_RETURN_IF_ERROR(params.Validate());

  // Each run is a self-contained single-threaded simulation; the fan-out
  // merges per-run tallies in run order, so any job count produces the
  // same result.
  struct RunOutcome {
    ChaosOracleResult agg;
    Status status = Status::OK();
  };
  std::vector<RunOutcome> outcomes = common::ParallelMap(
      options.jobs, static_cast<size_t>(options.runs), [&](size_t run) {
        RunOutcome out;
        out.status =
            RunOneChaos(options, params, static_cast<int>(run), &out.agg);
        return out;
      });

  ChaosOracleResult result;
  for (const RunOutcome& out : outcomes) {
    VIEWMAT_RETURN_IF_ERROR(out.status);
    const ChaosOracleResult& a = out.agg;
    result.runs += a.runs;
    result.acked_commits += a.acked_commits;
    result.acked_queries += a.acked_queries;
    result.degraded_query_acks += a.degraded_query_acks;
    result.client_retries += a.client_retries;
    result.redelivered_hits += a.redelivered_hits;
    result.rejected_commits += a.rejected_commits;
    result.ambiguous_resolved += a.ambiguous_resolved;
    result.shed_requests += a.shed_requests;
    result.server_crashes += a.server_crashes;
    result.server_recoveries += a.server_recoveries;
    result.journal_reconciled += a.journal_reconciled;
    result.session_checkpoints += a.session_checkpoints;
    result.messages_sent += a.messages_sent;
    result.faults_injected += a.faults_injected;
    result.liveness_failures += a.liveness_failures;
    result.lost_commits += a.lost_commits;
    result.duplicate_applications += a.duplicate_applications;
    result.state_mismatches += a.state_mismatches;
    result.replay_mismatches += a.replay_mismatches;
    result.query_mismatches += a.query_mismatches;
    result.corrupt_runs += a.corrupt_runs;
  }
  return result;
}

}  // namespace viewmat::sim
