#ifndef VIEWMAT_NET_NETWORK_H_
#define VIEWMAT_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace viewmat::net {

/// A message sink. Endpoints register with the Network under a NodeId and
/// receive decoded messages in deterministic delivery order.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnMessage(NodeId from, const Message& msg) = 0;
};

/// The transport seam the session layer sends through. Network implements
/// it directly; FaultyNetwork decorates it with seeded faults — mirroring
/// the FaultyDisk pattern, so the layers above exercise production error
/// paths, never test-only ones.
class NetworkInterface {
 public:
  virtual ~NetworkInterface() = default;
  /// Queues `msg` for delivery to `dst` after the channel latency plus
  /// `extra_delay_ms` (fault decorators use the extra delay for delay and
  /// reorder injection). Returns InvalidArgument for an unknown
  /// destination; a returned OK means "handed to the wire", NOT delivered.
  virtual Status Send(NodeId src, NodeId dst, const Message& msg,
                      double extra_delay_ms) = 0;
  Status Send(NodeId src, NodeId dst, const Message& msg) {
    return Send(src, dst, msg, 0.0);
  }
};

/// A deterministic in-process message transport on the model-milliseconds
/// virtual clock: one discrete-event loop owning virtual time, per-channel
/// seeded delivery latency, and generic timers. Everything the chaos
/// simulation does — message deliveries, client retry timeouts, server
/// restarts, refresh ticks — is an event in this single queue, ordered by
/// (time, insertion sequence), so a whole run is a pure function of its
/// seeds. `--jobs` parallelism lives strictly ABOVE this class (one
/// Network per sweep cell), which is how chaos reports stay byte-identical
/// at any worker count.
///
/// Channels: each ordered (src, dst) pair lazily gets its own seeded
/// latency stream (base latency + uniform jitter), so the delivery
/// schedule of one link never depends on traffic elsewhere.
class Network : public NetworkInterface {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Per-message link latency: base + Uniform[0, jitter).
    double base_latency_ms = 1.0;
    double jitter_ms = 0.5;
    /// Optional instrumentation (not owned; may be null). The tracer is
    /// pointed at this network's virtual clock and receives a net.send
    /// span per message handed to the wire.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  explicit Network(Options options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the endpoint behind `id`.
  void Register(NodeId id, Endpoint* endpoint);

  // --- NetworkInterface ----------------------------------------------------
  using NetworkInterface::Send;  // keep the 3-arg convenience visible
  Status Send(NodeId src, NodeId dst, const Message& msg,
              double extra_delay_ms) override;

  // --- Timers --------------------------------------------------------------
  /// Runs `fn` once the virtual clock reaches now + delay_ms. Handlers that
  /// may be superseded (client retry timers) validate their own state when
  /// they fire instead of being cancelled.
  void Post(double delay_ms, std::function<void()> fn);

  // --- Event loop ----------------------------------------------------------
  /// Dispatches events in (time, sequence) order until the queue drains or
  /// `max_events` have run. Returns true when the queue drained — the
  /// liveness verdict the chaos oracle checks (a protocol that retries
  /// forever never drains).
  bool RunUntilIdle(size_t max_events);

  double now_ms() const { return now_ms_; }
  /// The transport's virtual clock (for tracers and wait computations).
  const obs::VirtualClock* clock() const { return &clock_; }

  obs::Tracer* tracer() { return options_.tracer; }
  obs::MetricsRegistry* metrics() { return options_.metrics; }

  uint64_t sent() const { return sent_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t events_run() const { return events_run_; }

 private:
  class Clock : public obs::VirtualClock {
   public:
    double NowMs() const override { return ms_; }
    double ms_ = 0.0;
  };

  struct Event {
    double at_ms = 0.0;
    uint64_t seq = 0;  ///< insertion order: the deterministic tie-break
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  /// The (src, dst) channel's latency stream, created on first use.
  Random* ChannelRng(NodeId src, NodeId dst);

  Options options_;
  Clock clock_;
  double now_ms_ = 0.0;
  uint64_t next_event_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::map<NodeId, Endpoint*> endpoints_;
  std::map<std::pair<NodeId, NodeId>, Random> channel_rng_;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t events_run_ = 0;
};

}  // namespace viewmat::net

#endif  // VIEWMAT_NET_NETWORK_H_
