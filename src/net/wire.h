#ifndef VIEWMAT_NET_WIRE_H_
#define VIEWMAT_NET_WIRE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace viewmat::net {

/// A network address. The chaos harness's convention: 0 = the session
/// server, 1 = the refresh daemon, 2.. = clients. Session ids equal the
/// client's node id, which keeps sessions resurrectable after a server
/// crash without a handshake replay.
using NodeId = uint32_t;

/// Every message on the wire. Requests flow client → server, replies
/// server → client; the refresh ping/ack pair keeps the server's view of
/// the refresh path's reachability honest under partitions.
enum class MsgType : uint8_t {
  kOpenSession = 1,  ///< client → server: create/confirm a session
  kOpenAck = 2,      ///< server → client: session ready
  kCommit = 3,       ///< client → server: apply an update transaction
  kQuery = 4,        ///< client → server: answer a view range query
  kReply = 5,        ///< server → client: outcome of kCommit/kQuery
  kRefreshPing = 6,  ///< server → refresher: is the refresh path reachable?
  kRefreshAck = 7,   ///< refresher → server: yes — freshen the view
};

/// Outcome field of a kReply / kOpenAck.
enum class WireStatus : uint8_t {
  kOk = 1,
  /// Admission controller shed the request (inflight queue full, or the
  /// session table is at capacity for kOpenSession). The client backs off
  /// and retries — nothing was applied.
  kOverloaded = 2,
  /// The request provably did not apply (e.g. the strategy refused the
  /// transaction, or a resolved-ambiguous commit turned out lost). Safe to
  /// retry with the same sequence number.
  kRejected = 3,
};

const char* MsgTypeName(MsgType t);
const char* WireStatusName(WireStatus s);

/// One wire message. The transport carries the *encoded* form (Encode /
/// Decode below, a little-endian tagged layout), so endpoints exchange
/// bytes, not object graphs — what makes the in-process transport an
/// honest stand-in for a socket.
///
/// Exactly-once bookkeeping: every kCommit/kQuery carries
/// (session_id, seq_no) — the client's session and its monotonically
/// increasing per-session operation number. A client never advances seq_no
/// until the previous one is acknowledged, so the server's dedup state per
/// session is exactly one entry: the last applied seq_no plus its cached
/// reply.
struct Message {
  MsgType type = MsgType::kCommit;
  uint64_t session_id = 0;
  uint64_t seq_no = 0;
  /// Retry attempt (1 = first send). Observability only; the server's
  /// semantics depend solely on (session_id, seq_no).
  uint32_t attempt = 1;

  /// kCommit: the update as (base key, payload delta) pairs. Deltas are
  /// RELATIVE — new_v = current_v + delta — so a duplicated application is
  /// visible in the final state instead of silently idempotent, which is
  /// what gives the chaos oracle teeth.
  std::vector<std::pair<int64_t, double>> victims;

  /// kQuery: the half-open key range is [lo, hi] inclusive, mirroring the
  /// view query API.
  int64_t lo = 0;
  int64_t hi = 0;

  /// kReply / kOpenAck.
  WireStatus wstatus = WireStatus::kOk;
  /// kReply to a committed kCommit: the transaction id the driver issued.
  uint64_t txn_id = 0;
  /// kReply to a kQuery: FNV-1a digest of the answered multiset, and the
  /// length of the server's applied-commit journal when the query executed
  /// (the oracle replays that prefix to recompute the expected answer).
  uint64_t answer_digest = 0;
  uint64_t journal_len = 0;
  /// kReply to a kQuery: answered while the refresh path was partitioned
  /// away — served through the strategy's query-modification fallback
  /// rather than a freshened materialization.
  bool degraded = false;

  std::vector<uint8_t> Encode() const;
  static StatusOr<Message> Decode(const uint8_t* data, size_t len);
};

}  // namespace viewmat::net

#endif  // VIEWMAT_NET_WIRE_H_
