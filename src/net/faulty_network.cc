#include "net/faulty_network.h"

namespace viewmat::net {

FaultyNetwork::FaultyNetwork(NetworkInterface* inner,
                             const obs::VirtualClock* clock, uint64_t seed)
    : inner_(inner), clock_(clock), rng_(seed | 1) {}

void FaultyNetwork::ScriptDropAtMsg(uint64_t nth) {
  drop_at_msg_ = nth == 0 ? 0 : msg_count_ + nth;
}

void FaultyNetwork::AddPartition(double from_ms, double to_ms, NodeId a,
                                 NodeId b, bool one_way) {
  partitions_.push_back({from_ms, to_ms, a, b, one_way});
}

bool FaultyNetwork::Partitioned(NodeId src, NodeId dst) const {
  const double now = clock_ != nullptr ? clock_->NowMs() : 0.0;
  for (const Partition& p : partitions_) {
    if (now < p.from_ms || now >= p.to_ms) continue;
    if (src == p.a && dst == p.b) return true;
    if (!p.one_way && src == p.b && dst == p.a) return true;
  }
  return false;
}

void FaultyNetwork::ClearFaults() {
  drop_rate_ = duplicate_rate_ = reorder_rate_ = delay_rate_ = 0.0;
  drop_at_msg_ = 0;
  partitions_.clear();
}

Status FaultyNetwork::Send(NodeId src, NodeId dst, const Message& msg,
                           double extra_delay_ms) {
  ++msg_count_;

  // Scripted point drop: exact, budget-exempt (the sweep owns its count).
  if (drop_at_msg_ != 0 && msg_count_ == drop_at_msg_) {
    drop_at_msg_ = 0;
    ++dropped_;
    return Status::OK();
  }

  // Partition windows: scripted topology, also budget-exempt (they heal by
  // construction, so they cannot keep a run alive forever).
  if (Partitioned(src, dst)) {
    ++partition_drops_;
    return Status::OK();
  }

  // Probabilistic faults, in a fixed decision order so the RNG stream is
  // identical run to run. Every Bernoulli draw happens whether or not the
  // budget allows the fault, keeping later decisions independent of when
  // the budget ran out.
  const bool want_drop = rng_.Bernoulli(drop_rate_);
  const bool want_dup = rng_.Bernoulli(duplicate_rate_);
  const bool want_delay = rng_.Bernoulli(delay_rate_);
  const bool want_reorder = rng_.Bernoulli(reorder_rate_);
  const double dup_offset = rng_.NextDouble() * delay_ms_;
  const double reorder_offset = rng_.NextDouble() * delay_ms_ * 0.5;

  if (want_drop && BudgetAllows()) {
    ++dropped_;
    ++faults_injected_;
    return Status::OK();
  }
  double extra = extra_delay_ms;
  if (want_delay && BudgetAllows()) {
    ++delayed_;
    ++faults_injected_;
    extra += delay_ms_;
  }
  if (want_reorder && BudgetAllows()) {
    // A random sub-window offset lets messages sent later overtake this
    // one — reordering as latency inversion, the way real networks do it.
    ++reordered_;
    ++faults_injected_;
    extra += reorder_offset;
  }
  if (want_dup && BudgetAllows()) {
    ++duplicated_;
    ++faults_injected_;
    VIEWMAT_RETURN_IF_ERROR(inner_->Send(src, dst, msg, extra + dup_offset));
  }
  return inner_->Send(src, dst, msg, extra);
}

}  // namespace viewmat::net
