#ifndef VIEWMAT_NET_FAULTY_NETWORK_H_
#define VIEWMAT_NET_FAULTY_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "net/network.h"
#include "obs/trace.h"

namespace viewmat::net {

/// Fault-injecting decorator over any NetworkInterface — the transport
/// analogue of storage::FaultyDisk, and deliberately shaped like it: the
/// session layer sends through the same interface healthy or faulty, so
/// faults exercise production retry/dedup paths, never test-only ones.
///
/// Failure classes, all deterministic under the seed:
///
///  - Probabilistic per-message faults: drop (message vanishes), duplicate
///    (delivered twice, the copy extra-delayed), delay (one large extra
///    latency), reorder (a smaller extra latency that lets later traffic
///    overtake). Bounded by set_max_faults so runs provably converge once
///    the budget is spent — the transport-side twin of FaultyDisk's fault
///    budget.
///  - Scripted point drops: ScriptDropAtMsg(nth) drops exactly the nth
///    message from now (1 = the very next), the exhaustive-point primitive
///    sweeps use (every protocol step gets its message dropped in some
///    run).
///  - Scripted partitions: AddPartition blocks a node pair for a virtual
///    time window — symmetric by default, one-way for asymmetric link
///    failures. Partitions are scripted topology, not random faults: they
///    heal by construction and do not consume the fault budget.
class FaultyNetwork : public NetworkInterface {
 public:
  /// `clock` positions partition windows on the transport's virtual time;
  /// pass Network::clock(). Neither pointer is owned.
  FaultyNetwork(NetworkInterface* inner, const obs::VirtualClock* clock,
                uint64_t seed = 0);

  FaultyNetwork(const FaultyNetwork&) = delete;
  FaultyNetwork& operator=(const FaultyNetwork&) = delete;

  // --- NetworkInterface ----------------------------------------------------
  using NetworkInterface::Send;  // keep the 3-arg convenience visible
  Status Send(NodeId src, NodeId dst, const Message& msg,
              double extra_delay_ms) override;

  // --- Probabilistic faults ------------------------------------------------
  void set_drop_rate(double p) { drop_rate_ = p; }
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }
  void set_reorder_rate(double p) { reorder_rate_ = p; }
  void set_delay_rate(double p) { delay_rate_ = p; }
  /// Extra latency for a delayed message (and the ceiling for a reorder
  /// jitter or a duplicate's offset).
  void set_delay_ms(double ms) { delay_ms_ = ms; }
  /// Stops injecting probabilistic faults after `n` total (0 = no bound).
  void set_max_faults(uint64_t n) { max_faults_ = n; }

  // --- Scripted faults -----------------------------------------------------
  /// Drops exactly the `nth` message sent from now (1 = the next one).
  void ScriptDropAtMsg(uint64_t nth);

  /// Blocks a → b (and b → a unless `one_way`) while the virtual clock is
  /// in [from_ms, to_ms).
  void AddPartition(double from_ms, double to_ms, NodeId a, NodeId b,
                    bool one_way = false);

  /// True when a → b is inside an active partition window right now. The
  /// session server consults this to classify reads as degraded while its
  /// refresh path is isolated.
  bool Partitioned(NodeId src, NodeId dst) const;

  /// Disarms every programmed failure: rates, the scripted drop, and all
  /// partition windows (end-of-run healing).
  void ClearFaults();

  // --- Stats ---------------------------------------------------------------
  uint64_t msgs_seen() const { return msg_count_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t delayed() const { return delayed_; }
  uint64_t reordered() const { return reordered_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  struct Partition {
    double from_ms = 0.0;
    double to_ms = 0.0;
    NodeId a = 0;
    NodeId b = 0;
    bool one_way = false;
  };

  bool BudgetAllows() const {
    return max_faults_ == 0 || faults_injected_ < max_faults_;
  }

  NetworkInterface* inner_;
  const obs::VirtualClock* clock_;
  Random rng_;

  double drop_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  double delay_rate_ = 0.0;
  double delay_ms_ = 8.0;
  uint64_t max_faults_ = 0;

  uint64_t msg_count_ = 0;
  uint64_t drop_at_msg_ = 0;  ///< absolute message number; 0 = not armed
  std::vector<Partition> partitions_;

  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t delayed_ = 0;
  uint64_t reordered_ = 0;
  uint64_t partition_drops_ = 0;
  uint64_t faults_injected_ = 0;
};

}  // namespace viewmat::net

#endif  // VIEWMAT_NET_FAULTY_NETWORK_H_
