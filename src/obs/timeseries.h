#ifndef VIEWMAT_OBS_TIMESERIES_H_
#define VIEWMAT_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace viewmat::obs {

/// Time-series primitives over the *model-milliseconds* virtual clock.
///
/// Every type here takes timestamps, never reads a wall clock: the caller
/// passes the model time of each sample (usually CostTracker::TotalMs()).
/// That makes time-series output exactly as deterministic as the simulation
/// that produced it — byte-identical at any --jobs setting — and lets a
/// "one hour of traffic" experiment run in milliseconds of wall time.
///
/// Windowing convention, shared by all three types: time is divided into
/// fixed windows of `window_ms`; a sample at time t belongs to window
/// floor(t / window_ms). A sample landing exactly on a boundary k*window_ms
/// therefore opens window k (half-open intervals [k*W, (k+1)*W)).
///
/// Thread safety: like MetricsRegistry, these are merge-on-snapshot — all
/// mutation and snapshot accessors lock an internal mutex, so concurrent
/// sweep workers can record into a shared instance and a reader can
/// snapshot mid-run. Determinism across job counts is the *caller's*
/// deal (per-run instances or deterministic timestamps), exactly as for
/// the metrics registry.

/// Per-window event counter: Add(t, n) bumps the window containing t.
/// Windows are kept sparsely, so an idle span of model time costs nothing.
class WindowedCounter {
 public:
  explicit WindowedCounter(double window_ms);

  void Add(double t_ms, uint64_t n = 1);

  struct Window {
    int64_t index = 0;  ///< window covers [index*window_ms, (index+1)*window_ms)
    uint64_t count = 0;
  };
  /// Non-empty windows in ascending index order.
  std::vector<Window> Snapshot() const;
  /// Count in the window containing t_ms (0 when none).
  uint64_t CountAt(double t_ms) const;
  uint64_t total() const;
  double window_ms() const { return window_ms_; }

 private:
  const double window_ms_;
  mutable std::mutex mu_;
  std::map<int64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Exponentially-weighted moving average with a half-life in model ms.
/// Irregular sampling: the old average's weight decays by 2^(-dt/half_life)
/// where dt is the model time since the previous sample, so a burst of
/// samples and a trickle age at the same rate per model millisecond.
/// Samples must arrive in non-decreasing time order.
class EwmaGauge {
 public:
  explicit EwmaGauge(double half_life_ms);

  void Observe(double t_ms, double value);

  /// Current smoothed value (0 before the first sample; the first sample
  /// sets the average directly).
  double value() const;
  uint64_t count() const;
  double half_life_ms() const { return half_life_ms_; }

 private:
  const double half_life_ms_;
  mutable std::mutex mu_;
  double value_ = 0;
  double last_t_ms_ = 0;
  uint64_t count_ = 0;
};

/// Fixed-bucket histogram over a sliding window of the last `window_count`
/// windows of `window_ms` each — quantile estimates that track the recent
/// past instead of the whole run. `bounds` are inclusive upper bounds of
/// the finite buckets plus an implicit +inf bucket (same convention as
/// obs::Histogram). Old windows are recycled in place (a ring), so memory
/// is O(window_count * buckets) regardless of run length.
///
/// Samples must arrive in non-decreasing window order; a sample for a
/// window older than the ring's span is dropped (it is outside the sliding
/// window by definition).
class SlidingWindowHistogram {
 public:
  SlidingWindowHistogram(std::vector<double> bounds, double window_ms,
                         size_t window_count);

  void Observe(double t_ms, double v);

  /// Per-bucket counts summed over the sliding window ending at the window
  /// containing t_ms (bounds.size() + 1 entries).
  std::vector<uint64_t> MergedCounts(double t_ms) const;
  /// Total samples in the sliding window at t_ms.
  uint64_t MergedCount(double t_ms) const;

  /// Quantile estimate over the sliding window at t_ms: the smallest bucket
  /// upper bound whose cumulative count reaches q of the window's samples.
  /// A single-sample window therefore reports that sample's bucket bound at
  /// every q in (0, 1]. Saturates at the largest finite bound when the
  /// quantile falls in the +inf bucket (a deliberate, serialization-safe
  /// clamp), and returns 0 for an empty window.
  double Quantile(double t_ms, double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  double window_ms() const { return window_ms_; }
  size_t window_count() const { return slots_.size(); }

 private:
  struct Slot {
    int64_t index = -1;  ///< -1 = never used
    std::vector<uint64_t> counts;
    uint64_t total = 0;
  };

  int64_t WindowIndex(double t_ms) const;

  const std::vector<double> bounds_;
  const double window_ms_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  int64_t latest_index_ = -1;  ///< newest window ever observed
};

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_TIMESERIES_H_
