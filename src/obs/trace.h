#ifndef VIEWMAT_OBS_TRACE_H_
#define VIEWMAT_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace viewmat::obs {

/// Time source for the tracer. The simulator's clock is *model
/// milliseconds* — the CostTracker's accumulated C1/C2/C3 charges — not
/// wall-clock: spans measure what the paper's cost accounting measures, so
/// a span's duration is exactly the model cost of the work inside it.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual double NowMs() const = 0;
};

/// One recorded span. `parent` is the 1-based handle of the enclosing span
/// (0 = track root); handles are also the span's position in begin order,
/// so the vector doubles as a stable serialization order.
struct Span {
  std::string name;
  uint32_t parent = 0;
  uint32_t track = 0;
  double begin_ms = 0;
  double end_ms = -1;  ///< -1 while open
};

/// Records nested spans against a VirtualClock and serializes them as
/// Chrome-trace/Perfetto JSON (load via ui.perfetto.dev or
/// chrome://tracing) or as a deterministic ASCII tree for golden tests.
///
/// The disabled mode is a null pointer: every emission site goes through
/// ScopedSpan, which does nothing (one branch) when the tracer is null, so
/// tracing costs nothing unless a harness opts in.
class Tracer {
 public:
  /// `clock` may be null (spans record 0); see SetClock.
  explicit Tracer(const VirtualClock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Points the tracer at a (new) clock. The simulator calls this per
  /// strategy run: each run has its own CostTracker whose model time
  /// restarts at zero, and each run gets its own track (see NewTrack), so
  /// runs lay out as parallel tracks starting at t=0 — directly comparable
  /// in Perfetto.
  void SetClock(const VirtualClock* clock) { clock_ = clock; }

  /// Starts a new track (Perfetto "thread") named `name`; subsequent spans
  /// land on it. Returns the track id.
  uint32_t NewTrack(std::string name);

  /// Begins a span; returns its handle for EndSpan. Nesting follows
  /// begin/end order (a stack), which matches ScopedSpan's RAII scoping.
  uint32_t BeginSpan(std::string name);
  void EndSpan(uint32_t handle);

  size_t span_count() const { return spans_.size(); }
  const std::vector<Span>& spans() const { return spans_; }

  /// Chrome trace event format: {"traceEvents":[...]} with complete ("X")
  /// events in microseconds of model time, one tid per track.
  std::string ToChromeTraceJson() const;

  /// Deterministic indented tree (per track, begin order) with
  /// [begin..end] model-ms stamps — the golden-test format.
  std::string ToString() const;

  void Clear();

 private:
  double Now() const { return clock_ != nullptr ? clock_->NowMs() : 0.0; }

  const VirtualClock* clock_;
  std::vector<Span> spans_;
  std::vector<uint32_t> open_stack_;  ///< handles of currently-open spans
  std::vector<std::string> track_names_;
  uint32_t track_ = 0;
};

/// RAII span. Null tracer = disabled tracing: construction and destruction
/// are a single pointer test each, so instrumentation sites can stay in
/// hot paths unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name) {
    if (tracer != nullptr) {
      tracer_ = tracer;
      handle_ = tracer->BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(handle_);
  }

  /// Closes the span before scope exit (for spans covering only the front
  /// part of a function). Idempotent; the destructor becomes a no-op.
  void End() {
    if (tracer_ != nullptr) tracer_->EndSpan(handle_);
    tracer_ = nullptr;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  uint32_t handle_ = 0;
};

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_TRACE_H_
