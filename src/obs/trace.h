#ifndef VIEWMAT_OBS_TRACE_H_
#define VIEWMAT_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace viewmat::obs {

/// Time source for the tracer. The simulator's clock is *model
/// milliseconds* — the CostTracker's accumulated C1/C2/C3 charges — not
/// wall-clock: spans measure what the paper's cost accounting measures, so
/// a span's duration is exactly the model cost of the work inside it.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual double NowMs() const = 0;
};

/// One recorded span. `parent` is the 1-based position of the enclosing
/// span in the serialized span list (0 = track root), so the vector
/// doubles as a stable serialization order.
struct Span {
  std::string name;
  uint32_t parent = 0;
  uint32_t track = 0;
  double begin_ms = 0;
  double end_ms = -1;  ///< -1 while open
};

/// Records nested spans against a VirtualClock and serializes them as
/// Chrome-trace/Perfetto JSON (load via ui.perfetto.dev or
/// chrome://tracing) or as a deterministic ASCII tree for golden tests.
///
/// Span naming scheme (shared by every strategy, so traces from deferred
/// and hybrid runs line up): root spans are bare verbs — "txn", "query",
/// "refresh", "recover", "recompute" — and sub-steps are
/// "<root>.<step>" in snake_case, e.g. "refresh.prepare",
/// "refresh.view_patch", "refresh.fold", "refresh.ad_reset",
/// "recover.ad", "recover.log_replay", "recover.bloom_rebuild",
/// "recover.wal_analysis", "recover.wal_redo". The server layer adds the
/// namespaced roots "server.txn" / "server.query" (one per scheduled
/// client operation) and "lock.wait" (a worker physically blocked in
/// LockManager::Acquire). The wire layer adds the "net." roots:
/// "net.send" (one per message handed to the in-process transport),
/// "net.retry" (a client re-sending an unacknowledged request after a
/// timeout), and "net.redeliver" (the server answering a duplicate
/// request from the dedup cache instead of re-executing it). New
/// emission sites should reuse an existing root when the work belongs
/// to one of these lifecycles rather than inventing a new root verb.
///
/// The disabled mode is a null pointer: every emission site goes through
/// ScopedSpan, which does nothing (one branch) when the tracer is null, so
/// tracing costs nothing unless a harness opts in.
///
/// Thread safety: each recording thread accumulates spans in its own
/// buffer (one completed root tree at a time); when a root span closes,
/// the finished tree is flushed into the shared span list under a mutex.
/// Span handles returned by BeginSpan are therefore *thread-local* and
/// only meaningful for a matching EndSpan on the same thread (ScopedSpan's
/// RAII contract). Snapshot accessors — span_count(), spans(), ToString(),
/// ToChromeTraceJson() — see flushed (root-closed) trees only and are safe
/// to call while other threads are still recording. Single-threaded
/// recording serializes in begin order, exactly as before.
class Tracer {
 public:
  /// `clock` may be null (spans record 0); see SetClock.
  explicit Tracer(const VirtualClock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Points the tracer at a (new) clock. The simulator calls this per
  /// strategy run: each run has its own CostTracker whose model time
  /// restarts at zero, and each run gets its own track (see NewTrack), so
  /// runs lay out as parallel tracks starting at t=0 — directly comparable
  /// in Perfetto. The clock is tracer-global: concurrent harnesses give
  /// each task its own tracer (or none) rather than sharing one clock.
  void SetClock(const VirtualClock* clock) { clock_ = clock; }

  /// Starts a new track (Perfetto "thread") named `name`; subsequent spans
  /// on the calling thread land on it. Returns the track id. Implicitly
  /// closes the calling thread's open spans, flushing them.
  uint32_t NewTrack(std::string name);

  /// Begins a span; returns its handle for EndSpan on the same thread.
  /// Nesting follows begin/end order (a per-thread stack), which matches
  /// ScopedSpan's RAII scoping.
  uint32_t BeginSpan(std::string name);
  void EndSpan(uint32_t handle);

  /// Flushed spans only — trees whose root span has closed.
  size_t span_count() const;
  std::vector<Span> spans() const;

  /// Chrome trace event format: {"traceEvents":[...]} with complete ("X")
  /// events in microseconds of model time, one tid per track.
  std::string ToChromeTraceJson() const;

  /// Deterministic indented tree (per track, begin order) with
  /// [begin..end] model-ms stamps — the golden-test format.
  std::string ToString() const;

  void Clear();

 private:
  /// Per-thread recording state: the buffer holds the (single) root tree
  /// currently being recorded by that thread; parents inside it are local
  /// 1-based handles, rebased on flush.
  struct ThreadState {
    std::vector<Span> buffer;
    std::vector<uint32_t> open;  ///< open spans' local handles, innermost last
    uint32_t track = 0;          ///< current (global) track id
  };

  double Now() const { return clock_ != nullptr ? clock_->NowMs() : 0.0; }
  ThreadState* State();
  /// Appends the thread's completed root tree to spans_ under mu_.
  void Flush(ThreadState* state);
  void CloseOpenSpans(ThreadState* state);

  const VirtualClock* clock_;
  mutable std::mutex mu_;  ///< guards spans_, track_names_, states_
  std::vector<Span> spans_;
  std::vector<std::string> track_names_;
  std::unordered_map<std::thread::id, std::unique_ptr<ThreadState>> states_;
};

/// RAII span. Null tracer = disabled tracing: construction and destruction
/// are a single pointer test each, so instrumentation sites can stay in
/// hot paths unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name) {
    if (tracer != nullptr) {
      tracer_ = tracer;
      handle_ = tracer->BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(handle_);
  }

  /// Closes the span before scope exit (for spans covering only the front
  /// part of a function). Idempotent; the destructor becomes a no-op.
  void End() {
    if (tracer_ != nullptr) tracer_->EndSpan(handle_);
    tracer_ = nullptr;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  uint32_t handle_ = 0;
};

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_TRACE_H_
