#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"
#include "common/logging.h"
#include "costmodel/regions.h"

namespace viewmat::obs {

namespace {

using costmodel::CostFn;
using costmodel::Params;
using costmodel::Strategy;

/// The paper's name for each strategy's total-cost formula.
const char* FormulaName(Strategy s) {
  switch (s) {
    case Strategy::kDeferred: return "TOTAL_def";
    case Strategy::kImmediate: return "TOTAL_imm";
    case Strategy::kQmClustered: return "TOTAL_cl";
    case Strategy::kQmUnclustered: return "TOTAL_ucl";
    case Strategy::kQmSequential: return "TOTAL_seq";
    case Strategy::kQmLoopJoin: return "TOTAL_join";
    case Strategy::kQmRecompute: return "TOTAL_rec";
  }
  return "TOTAL_?";
}

std::string Formula(Strategy s, int model, const Params& p) {
  char buf[192];
  if (model == 2) {
    std::snprintf(buf, sizeof(buf),
                  "%s(P=%.3f, f=%.4g, f_v=%.4g, f_R2=%.4g, u=%.4g, b=%.4g, "
                  "T=%.4g)",
                  FormulaName(s), p.P(), p.f, p.f_v, p.f_R2, p.u(), p.b(),
                  p.T());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s(P=%.3f, f=%.4g, f_v=%.4g, l=%.4g, u=%.4g, b=%.4g, "
                  "T=%.4g)",
                  FormulaName(s), p.P(), p.f, p.f_v, p.l, p.u(), p.b(), p.T());
  }
  return buf;
}

/// One searchable axis: how to read the parameter, how to build the point
/// at a trial value, and the range/scale to search over.
struct BoundaryAxis {
  const char* name;
  double lo;
  double hi;
  bool log_scale;
  double (*get)(const Params&);
  Params (*set)(const Params&, double);
};

const BoundaryAxis kAxes[] = {
    {"P", 0.001, 0.995, false, [](const Params& p) { return p.P(); },
     [](const Params& p, double x) { return p.WithUpdateProbability(x); }},
    {"f", 1e-4, 1.0, true, [](const Params& p) { return p.f; },
     [](const Params& p, double x) {
       Params q = p;
       q.f = x;
       return q;
     }},
    {"f_v", 1e-4, 1.0, true, [](const Params& p) { return p.f_v; },
     [](const Params& p, double x) {
       Params q = p;
       q.f_v = x;
       return q;
     }},
    {"l", 1.0, 1000.0, true, [](const Params& p) { return p.l; },
     [](const Params& p, double x) {
       Params q = p;
       q.l = x;
       return q;
     }},
};

Strategy WinnerAt(const CostFn& cost, const std::vector<Strategy>& candidates,
                  const BoundaryAxis& axis, const Params& base, double x) {
  return costmodel::Winner(cost, candidates, axis.set(base, x));
}

/// Bisects the winner flip inside (same, flipped): `same` wins the current
/// strategy, `flipped` wins something else. Returns the boundary location.
double BisectFlip(const CostFn& cost, const std::vector<Strategy>& candidates,
                  const BoundaryAxis& axis, const Params& base,
                  Strategy incumbent, double same, double flipped) {
  for (int i = 0; i < 64; ++i) {
    const double mid = axis.log_scale ? std::sqrt(same * flipped)
                                      : 0.5 * (same + flipped);
    if (WinnerAt(cost, candidates, axis, base, mid) == incumbent) {
      same = mid;
    } else {
      flipped = mid;
    }
  }
  return flipped;
}

/// Steps outward from x0 across `steps` grid positions per direction,
/// looking for the nearest winner flip; bisects it when found.
bool SearchAxis(const CostFn& cost, const std::vector<Strategy>& candidates,
                const BoundaryAxis& axis, const Params& base,
                Strategy incumbent, ExplainBoundary* out) {
  const double x0 = std::clamp(axis.get(base), axis.lo, axis.hi);
  constexpr int kSteps = 96;
  auto position = [&](double lo, double hi, int i) {
    const double t = static_cast<double>(i) / kSteps;
    return axis.log_scale ? lo * std::pow(hi / lo, t) : lo + t * (hi - lo);
  };

  bool found = false;
  double best_boundary = 0;
  Strategy best_challenger = incumbent;
  // Up from x0 and down from x0, independently; keep the closer flip.
  for (const bool upward : {true, false}) {
    const double far = upward ? axis.hi : axis.lo;
    if ((upward && x0 >= axis.hi) || (!upward && x0 <= axis.lo)) continue;
    double same = x0;
    for (int i = 1; i <= kSteps; ++i) {
      const double x = position(x0, far, i);
      const Strategy w = WinnerAt(cost, candidates, axis, base, x);
      if (w != incumbent) {
        const double boundary =
            BisectFlip(cost, candidates, axis, base, incumbent, same, x);
        if (!found ||
            std::fabs(boundary - x0) < std::fabs(best_boundary - x0)) {
          found = true;
          best_boundary = boundary;
          // Name the challenger from just beyond the boundary, not the
          // coarse grid point — several regions can sit between them.
          const double beyond = axis.log_scale
                                    ? boundary * (upward ? 1.0 + 1e-9 : 1.0 - 1e-9)
                                    : boundary + (upward ? 1e-9 : -1e-9);
          best_challenger = WinnerAt(cost, candidates, axis, base,
                                     std::clamp(beyond, axis.lo, axis.hi));
        }
        break;
      }
      same = x;
    }
  }
  if (!found) return false;
  out->param = axis.name;
  out->current = x0;
  out->boundary = best_boundary;
  out->distance = std::fabs(best_boundary - x0);
  // P is already a probability: its drift distance is directly comparable.
  // The log axes normalize by the current value.
  out->relative_distance = std::string_view(axis.name) == "P"
                               ? out->distance
                               : out->distance / std::max(x0, 1e-12);
  out->challenger = best_challenger;
  return true;
}

}  // namespace

ExplainReport BuildExplain(int model, const Params& params) {
  ExplainReport report;
  report.model = model;
  report.params = params;
  const CostFn cost = costmodel::ModelCostFn(model);
  const std::vector<Strategy>& candidates = costmodel::ModelCandidates(model);

  for (const Strategy s : candidates) {
    ExplainCandidate candidate;
    candidate.strategy = s;
    candidate.cost_ms = cost(s, params);
    candidate.formula = Formula(s, model, params);
    report.ranked.push_back(std::move(candidate));
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const ExplainCandidate& a, const ExplainCandidate& b) {
              return a.cost_ms < b.cost_ms;
            });
  for (ExplainCandidate& candidate : report.ranked) {
    candidate.margin_ms = candidate.cost_ms - report.ranked.front().cost_ms;
  }

  const Strategy incumbent = report.winner();
  for (const BoundaryAxis& axis : kAxes) {
    ExplainBoundary boundary;
    if (SearchAxis(cost, candidates, axis, params, incumbent, &boundary)) {
      report.boundaries.push_back(std::move(boundary));
    }
  }
  std::sort(report.boundaries.begin(), report.boundaries.end(),
            [](const ExplainBoundary& a, const ExplainBoundary& b) {
              return a.relative_distance < b.relative_distance;
            });
  return report;
}

std::string ExplainText(const ExplainReport& report) {
  std::string out;
  char buf[256];
  const Params& p = report.params;
  std::snprintf(buf, sizeof(buf),
                "Model %d view @ P=%.3f f=%.4g f_v=%.4g l=%.4g "
                "(N=%.0f, C1=%g C2=%g C3=%g)\n",
                report.model, p.P(), p.f, p.f_v, p.l, p.N, p.C1, p.C2, p.C3);
  out += buf;
  for (size_t i = 0; i < report.ranked.size(); ++i) {
    const ExplainCandidate& c = report.ranked[i];
    std::snprintf(buf, sizeof(buf), "  %zu. %-12s %-72s = %12.1f ms/query",
                  i + 1, costmodel::StrategyName(c.strategy),
                  c.formula.c_str(), c.cost_ms);
    out += buf;
    if (i == 0) {
      out += "  <-- winner";
    } else {
      std::snprintf(buf, sizeof(buf), "  (+%.1f)", c.margin_ms);
      out += buf;
    }
    out += '\n';
  }
  if (report.boundaries.empty()) {
    out += "no winner-region boundary within the searched P/f/f_v/l ranges\n";
    return out;
  }
  out += "nearest winner flip per axis:\n";
  for (const ExplainBoundary& b : report.boundaries) {
    std::snprintf(buf, sizeof(buf),
                  "  %-4s %.4g -> %.4g  (distance %.4g, relative %.3f)  "
                  "flips to %s\n",
                  b.param.c_str(), b.current, b.boundary, b.distance,
                  b.relative_distance,
                  costmodel::StrategyName(b.challenger));
    out += buf;
  }
  const ExplainBoundary* nearest = report.nearest_boundary();
  std::snprintf(buf, sizeof(buf), "nearest overall: %s = %.4g -> %s\n",
                nearest->param.c_str(), nearest->boundary,
                costmodel::StrategyName(nearest->challenger));
  out += buf;
  return out;
}

void WriteExplainJson(common::JsonWriter* w, const ExplainReport& report) {
  const auto write_boundary = [&](const ExplainBoundary& b) {
    w->BeginObject();
    w->KV("param", b.param);
    w->KV("current", b.current);
    w->KV("boundary", b.boundary);
    w->KV("distance", b.distance);
    w->KV("relative_distance", b.relative_distance);
    w->KV("challenger", costmodel::StrategyName(b.challenger));
    w->EndObject();
  };
  w->BeginObject();
  w->KV("model", report.model);
  w->Key("params");
  report.params.WriteJson(w);
  w->KV("winner", costmodel::StrategyName(report.winner()));
  w->KV("winner_cost_ms", report.winner_cost_ms());
  w->Key("candidates");
  w->BeginArray();
  for (const ExplainCandidate& c : report.ranked) {
    w->BeginObject();
    w->KV("strategy", costmodel::StrategyName(c.strategy));
    w->KV("cost_ms", c.cost_ms);
    w->KV("margin_ms", c.margin_ms);
    w->KV("formula", c.formula);
    w->EndObject();
  }
  w->EndArray();
  w->Key("boundaries");
  w->BeginArray();
  for (const ExplainBoundary& b : report.boundaries) write_boundary(b);
  w->EndArray();
  if (report.nearest_boundary() != nullptr) {
    w->Key("nearest_boundary");
    write_boundary(*report.nearest_boundary());
  }
  w->EndObject();
}

}  // namespace viewmat::obs
