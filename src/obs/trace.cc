#include "obs/trace.h"

#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace viewmat::obs {

Tracer::ThreadState* Tracer::State() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ThreadState>& slot = states_[self];
  if (slot == nullptr) slot = std::make_unique<ThreadState>();
  return slot.get();
}

void Tracer::Flush(ThreadState* state) {
  if (state->buffer.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t offset = static_cast<uint32_t>(spans_.size());
  for (Span& span : state->buffer) {
    if (span.parent != 0) span.parent += offset;
    spans_.push_back(std::move(span));
  }
  state->buffer.clear();
}

void Tracer::CloseOpenSpans(ThreadState* state) {
  const double now = Now();
  while (!state->open.empty()) {
    const uint32_t top = state->open.back();
    state->open.pop_back();
    Span& span = state->buffer[top - 1];
    if (span.end_ms < 0) span.end_ms = now;
  }
  Flush(state);
}

uint32_t Tracer::NewTrack(std::string name) {
  ThreadState* state = State();
  // A new track implicitly closes the thread's open spans — the simulator
  // switches tracks only between runs, when all spans are closed, but a
  // defensive close keeps the trace well-formed regardless.
  CloseOpenSpans(state);
  std::lock_guard<std::mutex> lock(mu_);
  track_names_.push_back(std::move(name));
  state->track = static_cast<uint32_t>(track_names_.size());
  return state->track;
}

uint32_t Tracer::BeginSpan(std::string name) {
  ThreadState* state = State();
  Span span;
  span.name = std::move(name);
  span.parent = state->open.empty() ? 0 : state->open.back();
  span.track = state->track;
  span.begin_ms = Now();
  state->buffer.push_back(std::move(span));
  const uint32_t handle = static_cast<uint32_t>(state->buffer.size());
  state->open.push_back(handle);
  return handle;
}

void Tracer::EndSpan(uint32_t handle) {
  ThreadState* state = State();
  if (handle == 0 || handle > state->buffer.size()) return;
  Span& span = state->buffer[handle - 1];
  if (span.end_ms >= 0) return;  // already closed (defensively)
  span.end_ms = Now();
  // Close any nested spans left open (exception-free code should never
  // leave any, but the trace must stay a tree).
  while (!state->open.empty()) {
    const uint32_t top = state->open.back();
    state->open.pop_back();
    if (top == handle) break;
    Span& inner = state->buffer[top - 1];
    if (inner.end_ms < 0) inner.end_ms = span.end_ms;
  }
  // Root closed: the tree is complete, publish it.
  if (state->open.empty()) Flush(state);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  track_names_.clear();
  states_.clear();
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  common::JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (size_t i = 0; i < track_names_.size(); ++i) {
    w.BeginObject();
    w.KV("name", "thread_name");
    w.KV("ph", "M");
    w.KV("pid", 1);
    w.KV("tid", static_cast<int64_t>(i + 1));
    w.Key("args");
    w.BeginObject();
    w.KV("name", track_names_[i]);
    w.EndObject();
    w.EndObject();
  }
  for (const Span& span : spans_) {
    w.BeginObject();
    w.KV("name", span.name);
    w.KV("cat", "viewmat");
    w.KV("ph", "X");
    // Model milliseconds → trace microseconds.
    w.KV("ts", span.begin_ms * 1000.0);
    const double end = span.end_ms >= 0 ? span.end_ms : span.begin_ms;
    w.KV("dur", (end - span.begin_ms) * 1000.0);
    w.KV("pid", 1);
    w.KV("tid", static_cast<int64_t>(span.track));
    w.EndObject();
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.str();
}

std::string Tracer::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  // Children of each span, in serialization order (begin order per tree,
  // trees in root-completion order).
  std::vector<std::vector<uint32_t>> children(spans_.size() + 1);
  for (uint32_t h = 1; h <= spans_.size(); ++h) {
    children[spans_[h - 1].parent].push_back(h);
  }
  // Depth-first from each root, grouped by track.
  struct Rec {
    const std::vector<std::vector<uint32_t>>& children;
    const std::vector<Span>& spans;
    std::string& out;
    char* buf;
    size_t buf_size;
    void Visit(uint32_t handle, int depth) {
      const Span& s = spans[handle - 1];
      const double end = s.end_ms >= 0 ? s.end_ms : s.begin_ms;
      std::snprintf(buf, buf_size, "%*s%s [%.3f..%.3f] %.3f ms\n", depth * 2,
                    "", s.name.c_str(), s.begin_ms, end, end - s.begin_ms);
      out += buf;
      for (const uint32_t c : children[handle]) Visit(c, depth + 1);
    }
  };
  Rec rec{children, spans_, out, buf, sizeof(buf)};
  const uint32_t tracks = static_cast<uint32_t>(track_names_.size());
  for (uint32_t track = tracks == 0 ? 0 : 1; track <= tracks; ++track) {
    if (track >= 1) {
      std::snprintf(buf, sizeof(buf), "track %u: %s\n", track,
                    track_names_[track - 1].c_str());
      out += buf;
    }
    for (const uint32_t root : children[0]) {
      if (spans_[root - 1].track == track) rec.Visit(root, track == 0 ? 0 : 1);
    }
  }
  return out;
}

}  // namespace viewmat::obs
