#ifndef VIEWMAT_OBS_METRICS_H_
#define VIEWMAT_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace viewmat::common {
class JsonWriter;
}

namespace viewmat::obs {

/// Metric labels: ordered key=value pairs. Order is part of identity, so
/// instrumentation sites should list labels in one canonical order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Pointer-stable once created: call-sites cache the
/// pointer and increment without re-hashing the name.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of the
/// finite buckets; an implicit +inf bucket catches the rest (so counts has
/// bounds.size() + 1 entries).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(double v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
    ++count_;
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  double sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  double sum_ = 0;
  uint64_t count_ = 0;
};

/// Owns named, labeled counters and histograms. Get* registers on first
/// use and returns the same instance for the same (name, labels) after
/// that. Iteration order (and therefore JSON/text output) is sorted by
/// full name, so reports are deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  /// `bounds` applies on first registration only; later calls with the
  /// same (name, labels) return the existing histogram unchanged.
  Histogram* GetHistogram(std::string_view name, const Labels& labels,
                          std::vector<double> bounds);

  size_t counter_count() const { return counters_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  /// {"counters":[{"name","labels",{...},"value"}...],
  ///  "histograms":[{"name","labels",{...},"bounds","counts","sum","count"}]}
  void WriteJson(common::JsonWriter* w) const;
  /// One metric per line: name{k=v,...} value — for text reports.
  std::string ToString() const;

 private:
  struct CounterEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
  };
  struct HistogramEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<Histogram> histogram;
  };
  static std::string FullKey(std::string_view name, const Labels& labels);

  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, HistogramEntry> histograms_;
};

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_METRICS_H_
