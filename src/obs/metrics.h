#ifndef VIEWMAT_OBS_METRICS_H_
#define VIEWMAT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace viewmat::common {
class JsonWriter;
}

namespace viewmat::obs {

/// Metric labels: key=value pairs. The registry canonicalizes them by
/// sorting on key, so call sites may list labels in any order — the same
/// (name, label set) always resolves to the same metric, and snapshots
/// (JSON, text) always render labels in sorted order regardless of which
/// shard or call site registered them.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Pointer-stable once created: call-sites cache the
/// pointer and increment without re-hashing the name. Increments are
/// lock-free atomics, so counters can be bumped from any number of sweep
/// workers concurrently.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of the
/// finite buckets; an implicit +inf bucket catches the rest (so counts has
/// bounds.size() + 1 entries). Observe() is serialized by a per-histogram
/// mutex (a bucket update touches three fields atomically-together);
/// snapshot accessors copy under the same mutex.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(double v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[i];
    sum_ += v;
    ++count_;
  }

  /// Bounds are immutable after construction — safe to read without a lock.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot copies, consistent under the histogram's mutex.
  std::vector<uint64_t> counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  double sum_ = 0;
  uint64_t count_ = 0;
};

/// Owns named, labeled counters and histograms. Get* registers on first
/// use and returns the same instance for the same (name, labels) after
/// that. Iteration order (and therefore JSON/text output) is sorted by
/// full name, so reports are deterministic.
///
/// Thread safety: registration is sharded — the full key hashes to one of
/// shard_count() shards, each with its own mutex and map, so concurrent
/// sweep workers registering disjoint metrics rarely contend. The shard
/// count is sized from hardware_concurrency at construction (so a wider
/// machine gets more registration lanes) and each shard is padded to a
/// cache line so neighboring shard mutexes never false-share. Returned
/// pointers are stable for the registry's lifetime and may be used from any
/// thread (Counter is atomic, Histogram locks internally). Snapshots
/// (WriteJson, ToString, counter_count) merge the shards under their locks
/// — safe to call while workers are still recording, though mid-run
/// snapshots see a momentary value, not a barrier.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  /// `bounds` applies on first registration only; later calls with the
  /// same (name, labels) return the existing histogram unchanged.
  Histogram* GetHistogram(std::string_view name, const Labels& labels,
                          std::vector<double> bounds);

  size_t counter_count() const;
  size_t histogram_count() const;
  size_t shard_count() const { return shard_count_; }

  /// {"counters":[{"name","labels",{...},"value"}...],
  ///  "histograms":[{"name","labels",{...},"bounds","counts","sum","count"}]}
  void WriteJson(common::JsonWriter* w) const;
  /// One metric per line: name{k=v,...} value — for text reports.
  std::string ToString() const;

 private:
  struct CounterEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
  };
  struct HistogramEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<Histogram> histogram;
  };
  /// Cache-line aligned: adjacent shards in the array carry independently
  /// contended mutexes, and without the padding a writer bouncing one
  /// shard's line would slow readers of its neighbors (false sharing —
  /// measured by bench_yao_micro's metrics-contention note).
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::map<std::string, CounterEntry> counters;
    std::map<std::string, HistogramEntry> histograms;
  };

  /// Labels sorted by key — the canonical form used for identity and
  /// output. Stable for equal keys, preserving first-listed precedence.
  static Labels CanonicalLabels(const Labels& labels);
  /// `labels` must already be canonical.
  static std::string FullKey(std::string_view name, const Labels& labels);
  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  /// Merge-on-snapshot: collect (key, entry*) pairs from every shard under
  /// its lock, sorted by full key across all shards.
  std::vector<std::pair<std::string, const CounterEntry*>> SortedCounters()
      const;
  std::vector<std::pair<std::string, const HistogramEntry*>> SortedHistograms()
      const;

  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_METRICS_H_
