#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace viewmat::obs {

namespace {

int64_t FloorWindow(double t_ms, double window_ms) {
  return static_cast<int64_t>(std::floor(t_ms / window_ms));
}

}  // namespace

WindowedCounter::WindowedCounter(double window_ms) : window_ms_(window_ms) {
  VIEWMAT_CHECK(window_ms > 0);
}

void WindowedCounter::Add(double t_ms, uint64_t n) {
  const int64_t w = FloorWindow(t_ms, window_ms_);
  std::lock_guard<std::mutex> lock(mu_);
  counts_[w] += n;
  total_ += n;
}

std::vector<WindowedCounter::Window> WindowedCounter::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Window> out;
  out.reserve(counts_.size());
  for (const auto& [index, count] : counts_) out.push_back({index, count});
  return out;
}

uint64_t WindowedCounter::CountAt(double t_ms) const {
  const int64_t w = FloorWindow(t_ms, window_ms_);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counts_.find(w);
  return it != counts_.end() ? it->second : 0;
}

uint64_t WindowedCounter::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

EwmaGauge::EwmaGauge(double half_life_ms) : half_life_ms_(half_life_ms) {
  VIEWMAT_CHECK(half_life_ms > 0);
}

void EwmaGauge::Observe(double t_ms, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    value_ = value;
  } else {
    const double dt = std::max(0.0, t_ms - last_t_ms_);
    const double w = std::exp2(-dt / half_life_ms_);
    value_ = w * value_ + (1.0 - w) * value;
  }
  last_t_ms_ = t_ms;
  ++count_;
}

double EwmaGauge::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

uint64_t EwmaGauge::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

SlidingWindowHistogram::SlidingWindowHistogram(std::vector<double> bounds,
                                               double window_ms,
                                               size_t window_count)
    : bounds_(std::move(bounds)), window_ms_(window_ms) {
  VIEWMAT_CHECK(window_ms > 0);
  VIEWMAT_CHECK(window_count > 0);
  slots_.resize(window_count);
  for (Slot& slot : slots_) slot.counts.assign(bounds_.size() + 1, 0);
}

int64_t SlidingWindowHistogram::WindowIndex(double t_ms) const {
  return FloorWindow(t_ms, window_ms_);
}

void SlidingWindowHistogram::Observe(double t_ms, double v) {
  const int64_t w = WindowIndex(t_ms);
  size_t bucket = 0;
  while (bucket < bounds_.size() && v > bounds_[bucket]) ++bucket;
  std::lock_guard<std::mutex> lock(mu_);
  if (latest_index_ >= 0 &&
      w <= latest_index_ - static_cast<int64_t>(slots_.size())) {
    return;  // older than the ring's span: outside the sliding window
  }
  Slot& slot = slots_[static_cast<size_t>(w % static_cast<int64_t>(
                          slots_.size()))];
  if (slot.index != w) {
    // Rotation: this ring slot last held a window that has since slid out.
    std::fill(slot.counts.begin(), slot.counts.end(), 0);
    slot.total = 0;
    slot.index = w;
  }
  ++slot.counts[bucket];
  ++slot.total;
  latest_index_ = std::max(latest_index_, w);
}

std::vector<uint64_t> SlidingWindowHistogram::MergedCounts(double t_ms) const {
  const int64_t cur = WindowIndex(t_ms);
  const int64_t oldest = cur - static_cast<int64_t>(slots_.size()) + 1;
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.index < oldest || slot.index > cur) continue;
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += slot.counts[i];
  }
  return merged;
}

uint64_t SlidingWindowHistogram::MergedCount(double t_ms) const {
  const int64_t cur = WindowIndex(t_ms);
  const int64_t oldest = cur - static_cast<int64_t>(slots_.size()) + 1;
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.index < oldest || slot.index > cur) continue;
    total += slot.total;
  }
  return total;
}

double SlidingWindowHistogram::Quantile(double t_ms, double q) const {
  const std::vector<uint64_t> counts = MergedCounts(t_ms);
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      // +inf bucket: clamp to the largest finite bound (see header).
      return i < bounds_.size() ? bounds_[i]
                                : (bounds_.empty() ? 0.0 : bounds_.back());
    }
  }
  // Only reachable for q <= 0: report the smallest occupied bucket.
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      return i < bounds_.size() ? bounds_[i]
                                : (bounds_.empty() ? 0.0 : bounds_.back());
    }
  }
  return 0.0;
}

}  // namespace viewmat::obs
