#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/json.h"

namespace viewmat::obs {

namespace {

/// Shard lanes ≈ threads that might register concurrently, clamped to a
/// sane range (tiny machines still get a few lanes; huge ones don't pay
/// for hundreds of mostly-empty maps).
size_t PickShardCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t n = hw == 0 ? 8 : static_cast<size_t>(hw);
  return std::clamp<size_t>(n, 4, 64);
}

}  // namespace

MetricsRegistry::MetricsRegistry()
    : shard_count_(PickShardCount()),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

Labels MetricsRegistry::CanonicalLabels(const Labels& labels) {
  Labels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return sorted;
}

std::string MetricsRegistry::FullKey(std::string_view name,
                                     const Labels& labels) {
  std::string key(name);
  key += '{';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shard_count_];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shard_count_];
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  Labels canonical = CanonicalLabels(labels);
  const std::string key = FullKey(name, canonical);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(key);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(key, CounterEntry{std::string(name),
                                        std::move(canonical),
                                        std::make_unique<Counter>()})
             .first;
  }
  return it->second.counter.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const Labels& labels,
                                         std::vector<double> bounds) {
  Labels canonical = CanonicalLabels(labels);
  const std::string key = FullKey(name, canonical);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.histograms.find(key);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(key,
                      HistogramEntry{std::string(name), std::move(canonical),
                                     std::make_unique<Histogram>(
                                         std::move(bounds))})
             .first;
  }
  return it->second.histogram.get();
}

size_t MetricsRegistry::counter_count() const {
  size_t n = 0;
  for (size_t si = 0; si < shard_count_; ++si) {
    const Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.counters.size();
  }
  return n;
}

size_t MetricsRegistry::histogram_count() const {
  size_t n = 0;
  for (size_t si = 0; si < shard_count_; ++si) {
    const Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.histograms.size();
  }
  return n;
}

std::vector<std::pair<std::string, const MetricsRegistry::CounterEntry*>>
MetricsRegistry::SortedCounters() const {
  std::vector<std::pair<std::string, const CounterEntry*>> out;
  for (size_t si = 0; si < shard_count_; ++si) {
    const Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.counters) {
      out.emplace_back(key, &entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, const MetricsRegistry::HistogramEntry*>>
MetricsRegistry::SortedHistograms() const {
  std::vector<std::pair<std::string, const HistogramEntry*>> out;
  for (size_t si = 0; si < shard_count_; ++si) {
    const Shard& shard = shards_[si];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.histograms) {
      out.emplace_back(key, &entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace {

void WriteLabels(common::JsonWriter* w, const Labels& labels) {
  w->Key("labels");
  w->BeginObject();
  for (const auto& [k, v] : labels) w->KV(k, v);
  w->EndObject();
}

}  // namespace

void MetricsRegistry::WriteJson(common::JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginArray();
  for (const auto& [key, entry] : SortedCounters()) {
    w->BeginObject();
    w->KV("name", entry->name);
    WriteLabels(w, entry->labels);
    w->KV("value", entry->counter->value());
    w->EndObject();
  }
  w->EndArray();
  w->Key("histograms");
  w->BeginArray();
  for (const auto& [key, entry] : SortedHistograms()) {
    const Histogram& h = *entry->histogram;
    w->BeginObject();
    w->KV("name", entry->name);
    WriteLabels(w, entry->labels);
    w->Key("bounds");
    w->BeginArray();
    for (const double b : h.bounds()) w->Double(b);
    w->EndArray();
    w->Key("counts");
    w->BeginArray();
    for (const uint64_t c : h.counts()) w->Uint(c);
    w->EndArray();
    w->KV("sum", h.sum());
    w->KV("count", h.count());
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  char buf[64];
  auto append_labeled = [&out](const std::string& name, const Labels& labels) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += '=';
        out += v;
      }
      out += '}';
    }
  };
  for (const auto& [key, entry] : SortedCounters()) {
    append_labeled(entry->name, entry->labels);
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(entry->counter->value()));
    out += buf;
  }
  for (const auto& [key, entry] : SortedHistograms()) {
    append_labeled(entry->name, entry->labels);
    std::snprintf(buf, sizeof(buf), " count=%llu sum=%.3f\n",
                  static_cast<unsigned long long>(entry->histogram->count()),
                  entry->histogram->sum());
    out += buf;
  }
  return out;
}

}  // namespace viewmat::obs
