#ifndef VIEWMAT_OBS_EXPLAIN_H_
#define VIEWMAT_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::common {
class JsonWriter;
}

namespace viewmat::obs {

/// Advisor explain report: for one view model + workload parameter point,
/// *why* the recommended strategy wins — every applicable TOTAL_* formula
/// evaluated with its parameter values, and how far the workload would
/// have to drift before a different strategy takes over.
///
/// The boundary distances are the load-bearing part for the online
/// adaptive advisor (ROADMAP item 4): a small distance on the P axis means
/// a modest shift in the update/query mix flips the decision, so a
/// controller watching the cost timeline knows which drift signal to
/// monitor and how much slack it has.

/// One ranked strategy with its evaluated cost formula.
struct ExplainCandidate {
  costmodel::Strategy strategy;
  double cost_ms = 0;    ///< model ms per view query (the TOTAL_* value)
  double margin_ms = 0;  ///< cost_ms - winner's cost_ms (0 for the winner)
  /// The formula as evaluated, e.g.
  /// "TOTAL_def(P=0.500, f=0.100, f_v=0.100, u=10, b=500, T=40)".
  std::string formula;
};

/// The nearest winner-flip along one parameter axis.
struct ExplainBoundary {
  std::string param;  ///< "P", "f", "f_v", or "l"
  double current = 0;   ///< the parameter's value at the explained point
  double boundary = 0;  ///< nearest value at which the winner changes
  double distance = 0;  ///< |boundary - current|
  /// distance / max(|current|, axis floor): a unitless "how much drift"
  /// number comparable across axes.
  double relative_distance = 0;
  costmodel::Strategy challenger;  ///< the winner on the far side
};

struct ExplainReport {
  int model = 0;  ///< 1, 2, or 3
  costmodel::Params params;
  std::vector<ExplainCandidate> ranked;  ///< ascending cost; front() wins
  /// Boundaries for every axis where a flip exists within the searched
  /// range, ordered by relative_distance (nearest first).
  std::vector<ExplainBoundary> boundaries;

  costmodel::Strategy winner() const { return ranked.front().strategy; }
  double winner_cost_ms() const { return ranked.front().cost_ms; }
  /// The single nearest boundary across all axes, or null when every axis
  /// is flip-free in range (the winner region surrounds the point).
  const ExplainBoundary* nearest_boundary() const {
    return boundaries.empty() ? nullptr : &boundaries.front();
  }
};

/// Builds the report: ranks costmodel::ModelCandidates(model) under
/// costmodel::ModelCostFn(model), then searches the P, f, f_v, and l axes
/// (P linearly, the rest log-scaled) for the nearest winner-region
/// boundary in each direction and bisects it to high precision.
ExplainReport BuildExplain(int model, const costmodel::Params& params);

/// Multi-line human-readable rendering.
std::string ExplainText(const ExplainReport& report);

/// Serializes the report as one JSON object onto `w`.
void WriteExplainJson(common::JsonWriter* w, const ExplainReport& report);

}  // namespace viewmat::obs

#endif  // VIEWMAT_OBS_EXPLAIN_H_
