#include "server/schedule.h"

#include <algorithm>
#include <map>
#include <string>

#include "common/random.h"
#include "db/predicate.h"
#include "workload/workload.h"

namespace viewmat::server {

namespace {

using workload::Scenario;

uint64_t ClientSeed(uint64_t base, uint32_t client) {
  uint64_t x = base ^ (0x9e3779b97f4a7c15ull * (client + 2));
  x ^= x >> 33;
  return x | 1;
}

/// The S-side interval set for a query [lo, hi]: the queried range clipped
/// to the view's t-lock screening intervals (the paper's rule index derived
/// from Predicate::ImpliedRangeSet on the clustering key). Keys outside the
/// screen cannot affect the view, so readers do not lock them.
db::IntervalSet ReaderIntervals(const db::IntervalSet& screen, int64_t lo,
                                int64_t hi) {
  return db::IntervalSet::Intersect(screen,
                                    db::IntervalSet(db::Interval{lo, hi}));
}

/// The X-side interval set for an update: one point interval per distinct
/// victim key (net A/D keys — old and new tuples share the key, only the
/// payload changes).
db::IntervalSet WriterIntervals(
    const std::vector<std::pair<int64_t, double>>& victims) {
  db::IntervalSet keys;
  for (const auto& [key, new_v] : victims) {
    keys = db::IntervalSet::Union(keys,
                                  db::IntervalSet(db::Interval{key, key}));
  }
  return keys;
}

bool IsWriter(const ScheduledOp& op) { return op.kind == OpKind::kUpdate; }

/// The key range a client draws from under a contention profile. For
/// kUniform this is the whole relation, so `base + Uniform(width)` is the
/// exact draw the pre-profile scheduler made — existing seeds keep their
/// schedules byte-for-byte.
struct KeyRange {
  int64_t base;
  int64_t width;
};

KeyRange ProfileRange(ContentionProfile p, uint32_t client, uint32_t clients,
                      int64_t n) {
  switch (p) {
    case ContentionProfile::kUniform:
      return {0, n};
    case ContentionProfile::kDisjoint: {
      const int64_t lo = static_cast<int64_t>(client) * n / clients;
      const int64_t hi = static_cast<int64_t>(client + 1) * n / clients;
      return {lo, std::max<int64_t>(1, hi - lo)};
    }
    case ContentionProfile::kHotRange:
      return {0, std::max<int64_t>(1, n / 8)};
  }
  return {0, n};
}

}  // namespace

const char* ContentionProfileName(ContentionProfile p) {
  switch (p) {
    case ContentionProfile::kUniform:
      return "uniform";
    case ContentionProfile::kDisjoint:
      return "disjoint";
    case ContentionProfile::kHotRange:
      return "hot-range";
  }
  return "unknown";
}

Schedule BuildSchedule(const ScheduleOptions& options,
                       sim::StrategyDriver* driver) {
  Schedule schedule;
  schedule.options = options;

  sim::ShadowOracle shadow = sim::MakeShadow(*driver->scenario());
  const int model = driver->model();
  const db::IntervalSet screen =
      driver->scenario()->ViewPredicate()->ImpliedRangeSet(Scenario::kFieldK1);
  const int64_t l =
      std::max<int64_t>(1, static_cast<int64_t>(driver->scenario()->params().l));

  // Per-client streams are seeded independently of the interleaving, and
  // the sequencer has its own stream: reordering the sequencer cannot
  // change what any client asks for, only when it runs.
  std::vector<Random> client_rng;
  std::vector<uint32_t> remaining(options.clients, options.ops_per_client);
  client_rng.reserve(options.clients);
  for (uint32_t c = 0; c < options.clients; ++c) {
    client_rng.emplace_back(ClientSeed(options.seed, c));
  }
  Random sequencer(ClientSeed(options.seed, options.clients + 17));

  uint64_t live = 0;
  for (uint32_t r : remaining) live += r;
  while (live > 0) {
    // Pick among clients with work left, uniformly.
    uint32_t pick = static_cast<uint32_t>(sequencer.Uniform(live));
    uint32_t client = 0;
    while (pick >= remaining[client]) {
      pick -= remaining[client];
      ++client;
    }
    --remaining[client];
    --live;

    Random& rng = client_rng[client];
    const KeyRange range = ProfileRange(options.contention, client,
                                        options.clients, shadow.n);
    ScheduledOp op;
    op.seq = schedule.ops.size();
    op.client = client;
    if (rng.Bernoulli(options.update_fraction)) {
      op.kind = OpKind::kUpdate;
      for (int64_t j = 0; j < l; ++j) {
        const int64_t key =
            range.base + static_cast<int64_t>(rng.Uniform(range.width));
        op.victims.emplace_back(key, rng.NextDouble() * 1000.0);
      }
      op.voluntary_abort = rng.Bernoulli(options.abort_fraction);
      op.locks.push_back(LockRequest{kLockRelBase, LockMode::kExclusive,
                                     WriterIntervals(op.victims)});
      ++schedule.planned_updates;
      if (op.voluntary_abort) {
        ++schedule.planned_aborts;
      } else {
        AdvanceShadow(op, &shadow);
      }
    } else {
      op.kind = OpKind::kQuery;
      op.lo = range.base + static_cast<int64_t>(rng.Uniform(range.width));
      op.hi = op.lo + static_cast<int64_t>(rng.Uniform(
                          std::max<int64_t>(1, range.width / 2)));
      if (options.contention == ContentionProfile::kDisjoint) {
        // Keep the read set inside the client's partition so disjoint means
        // disjoint for readers too (the uniform path stays unclamped — its
        // historical stream never clamped).
        op.hi = std::min(op.hi, range.base + range.width - 1);
      }
      op.expected = sim::ExpectedRange(shadow, model, op.lo, op.hi);
      op.locks.push_back(LockRequest{kLockRelBase, LockMode::kShared,
                                     ReaderIntervals(screen, op.lo, op.hi)});
      if (model == 2) {
        // The join side is read-only: a full-relation S lock documents the
        // read set without ever conflicting (no writer touches R2).
        op.locks.push_back(LockRequest{kLockRelR2, LockMode::kShared,
                                       db::IntervalSet::All()});
      }
      ++schedule.planned_queries;
    }
    schedule.ops.push_back(std::move(op));
  }
  return schedule;
}

db::Transaction BuildUpdateTxn(const sim::ShadowOracle& shadow,
                               const ScheduledOp& op, db::Relation* rel) {
  db::Transaction txn;
  std::map<int64_t, double> staged;
  for (const auto& [key, new_v] : op.victims) {
    const double old_v = staged.count(key) ? staged[key] : shadow.v[key];
    db::Tuple old_t = shadow.BaseTuple(key);
    old_t.at(Scenario::kFieldV) = db::Value(old_v);
    db::Tuple new_t = old_t;
    new_t.at(Scenario::kFieldV) = db::Value(new_v);
    txn.Update(rel, old_t, new_t);
    staged[key] = new_v;
  }
  return txn;
}

void AdvanceShadow(const ScheduledOp& op, sim::ShadowOracle* shadow) {
  for (const auto& [key, new_v] : op.victims) shadow->v[key] = new_v;
}

uint64_t AnalyzeSchedule(Schedule* schedule) {
  const uint32_t window = schedule->options.clients;
  uint64_t total = 0;
  for (size_t i = 0; i < schedule->ops.size(); ++i) {
    ScheduledOp& op = schedule->ops[i];
    op.conflict_preds.clear();
    op.conflicts_rw = 0;
    op.conflicts_ww = 0;
    const size_t first = i >= window ? i - window + 1 : 0;
    for (size_t j = first; j < i; ++j) {
      const ScheduledOp& prev = schedule->ops[j];
      if (prev.client == op.client) continue;  // a client runs serially
      if (!Conflicts(op.locks, prev.locks)) continue;
      op.conflict_preds.push_back(static_cast<uint32_t>(j));
      if (IsWriter(op) && IsWriter(prev)) {
        ++op.conflicts_ww;
      } else {
        ++op.conflicts_rw;
      }
      ++total;
    }
  }
  return total;
}

StatusOr<uint64_t> StateDigest(sim::StrategyDriver* driver) {
  sim::ViewMultiset base;
  VIEWMAT_RETURN_IF_ERROR(driver->VisibleBase(&base));
  sim::ViewMultiset view;
  const int64_t n = driver->scenario()->n();
  VIEWMAT_RETURN_IF_ERROR(
      driver->Query(0, n - 1, [&](const db::Tuple& value, int64_t count) {
        view[value] += count;
        return true;
      }));

  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [t, count] : base) {
    mix("B" + t.ToString() + ":" + std::to_string(count));
  }
  for (const auto& [t, count] : view) {
    mix("V" + t.ToString() + ":" + std::to_string(count));
  }
  return h;
}

}  // namespace viewmat::server
