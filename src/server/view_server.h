#ifndef VIEWMAT_SERVER_VIEW_SERVER_H_
#define VIEWMAT_SERVER_VIEW_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/lock_manager.h"
#include "server/schedule.h"
#include "sim/strategy_driver.h"
#include "storage/cost_tracker.h"

namespace viewmat::server {

/// A VirtualClock the server can publish model time through from whichever
/// worker retires an op, readable by any thread (lock-wait spans begin on
/// threads that do not own the cost tracker).
class AtomicModelClock : public obs::VirtualClock {
 public:
  double NowMs() const override { return ms_.load(std::memory_order_relaxed); }
  void Set(double ms) { ms_.store(ms, std::memory_order_relaxed); }

 private:
  std::atomic<double> ms_{0.0};
};

/// How one scheduled op ended.
enum class OpStatus : uint8_t {
  kCommitted,    ///< update durably committed
  kAborted,      ///< update voluntarily aborted (locks held, undo, release)
  kRejected,     ///< update failed before/at commit and provably did not land
  kSkipped,      ///< never executed, or executed against state a crash erased
  kQueryExact,   ///< query answered and matched the expected multiset
  kQueryStale,   ///< query answered but WRONG — a serializability violation
  kQueryFailed,  ///< query errored loudly (only possible in crash runs)
};

const char* OpStatusName(OpStatus s);

/// The multi-client view server: N simulated client sessions issue
/// interleaved update/query transactions against one shared StrategyDriver
/// (base relations + materialized view + maintenance strategy + recovery),
/// executed by a fixed pool of real worker threads under the LockManager's
/// striped two-phase interval locks.
///
/// Determinism contract (the Calvin-style split the benches rely on): the
/// seeded scheduler fixes the global sequence before any thread runs, and
/// every logical artifact — op outcomes, per-op cost deltas, model time,
/// conflict and wait analysis, the final state digest — is byte-identical
/// at any worker count. Only physical quantities (wall time, lock waits,
/// blocked counts) vary with the machine, and those are reported separately
/// so benches confine them to the nondeterministic `execution` block.
///
/// How the physical pipeline keeps that promise:
///
///  - Static classification. Each op is EXCLUSIVE (may mutate shared state:
///    every update, and any query whose strategy could refresh/recompute on
///    the read path) or PARALLEL (provably pure reads). Classification uses
///    only the schedule and the strategy kind, so it is identical at any
///    worker count.
///  - Admission. An exclusive op starts only when every earlier op has
///    retired (it runs truly alone); a parallel op starts once the last
///    exclusive op before it has retired. Runs of consecutive parallel ops
///    therefore overlap physically; everything else is serialized in
///    schedule order.
///  - Sharded cost tracking. Each in-flight op charges a private CostShard
///    (ShardScope); shards merge into the tracker strictly in sequence
///    order at retirement, reproducing the serial totals counter for
///    counter (integer counters — merging is exact).
///  - Retirement. Ops retire in sequence order under one mutex: merge the
///    shard, stamp commit_ms from the merged totals, publish the model
///    clock. A worker never waits for its own retirement — whichever
///    worker marks the op done drains the retirement queue.
///  - Group commit (Options::driver.group_commit). Commit records buffer in
///    the log tail; retirement syncs once per `commit_batch` commits and at
///    the final op, charging the sync to the retiring op's shard. A crash
///    can then lose a suffix of acknowledged commits: every update records
///    the transaction id the driver issued, and after recovery each id is
///    replayed against the durable high-water mark — lost commits demote to
///    kRejected and every later op's observation of the erased state
///    demotes to kSkipped.
class ViewServer {
 public:
  struct Options {
    sim::StrategyDriver::Options driver;
    ScheduleOptions schedule;
    size_t workers = 1;
    /// Commits per group-commit batch (used only when driver.group_commit
    /// is set): the retirement pipeline syncs the WAL after this many
    /// committed updates, and once more at the end of the schedule.
    size_t commit_batch = 4;
    /// If nonzero, the disk crashes at this (1-based) disk op after the
    /// schedule starts; the server stops, recovers, and reports a
    /// prefix-consistent state.
    size_t crash_at_disk_op = 0;
    /// Optional instrumentation (not owned; may be null). The tracer runs
    /// on the server's atomic model clock and receives server.txn /
    /// server.query spans from the executing workers plus lock.wait spans
    /// from physically blocked workers.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  struct OpResult {
    OpStatus status = OpStatus::kSkipped;
    storage::CostCounters cost;   ///< this op's shard (merged at retirement)
    double commit_ms = 0.0;       ///< model clock when the op retired
    double arrive_ms = 0.0;       ///< logical arrival (client's prev commit)
    double logical_wait_ms = 0.0; ///< lock-wait under the logical model
    /// Transaction id the driver issued for this update (0 = none reached
    /// the driver). Deterministic; the post-crash reconciliation key.
    uint64_t txn_id = 0;

    // -- Physical quantities: worker-count and machine dependent. Benches
    //    must confine these to the nondeterministic `execution` block. --
    bool physically_blocked = false;  ///< lock acquire actually waited
    double physical_lock_wait_ms = 0.0;    ///< wall time blocked in Acquire
    double physical_commit_wait_ms = 0.0;  ///< wall time done → retired
  };

  struct Result {
    std::vector<OpResult> ops;  ///< indexed by schedule sequence

    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t rejected = 0;
    uint64_t skipped = 0;
    uint64_t queries_exact = 0;
    uint64_t queries_stale = 0;
    uint64_t queries_failed = 0;

    uint64_t logical_conflicts = 0;
    uint64_t conflicts_rw = 0;
    uint64_t conflicts_ww = 0;
    double logical_wait_ms = 0.0;

    double model_ms = 0.0;        ///< model time the schedule consumed
    double throughput_tps = 0.0;  ///< committed txns per model second
    storage::CostCounters total_cost;  ///< sum of all op shards

    /// Ops the static classifier admitted concurrently / serially (counts
    /// executed ops only). Deterministic.
    uint64_t parallel_ops = 0;
    uint64_t exclusive_ops = 0;
    /// Group-commit batches synced (0 without group commit). Deterministic.
    uint64_t commit_batches = 0;

    bool crashed = false;
    uint64_t recoveries = 0;
    uint64_t state_digest = 0;  ///< StateDigest of the converged final state

    /// Physical wall-clock time the pool spent on the schedule — the
    /// numerator of every scaling curve. Execution-block only.
    double wall_ms = 0.0;
    /// Physical lock statistics — wall time and actual blocking, which
    /// depend on the worker count and machine. Never fold these into a
    /// deterministic report section.
    LockManager::Stats lock_stats;
  };

  /// Builds the driver (healthy load), the schedule, the conflict analysis,
  /// and the static parallelism classification.
  static StatusOr<std::unique_ptr<ViewServer>> Create(const Options& options);

  ViewServer(const ViewServer&) = delete;
  ViewServer& operator=(const ViewServer&) = delete;

  /// Executes the whole schedule on the worker pool. One-shot.
  StatusOr<Result> Run();

  const Schedule& schedule() const { return schedule_; }
  sim::StrategyDriver* driver() { return driver_.get(); }
  /// Static classification, indexed by sequence (test introspection).
  const std::vector<uint8_t>& exclusive_ops() const { return exclusive_; }

 private:
  explicit ViewServer(const Options& options) : options_(options) {}

  /// Fills exclusive_ and admit_need_ from the schedule + strategy kind.
  void ClassifyOps();

  void WorkerLoop();
  /// Executes op `i` with its shard bound. Returns false when the disk
  /// crashed under the op (the server stops executing).
  bool ExecuteOp(size_t i);
  /// Retires op `retired_` (exec_mu_ held): group-commit sync at batch
  /// boundaries, shard merge, commit stamp, clock publish.
  void RetireLocked();
  /// Flips the buffer pool into concurrent-read mode when the next op to
  /// retire is parallel (exec_mu_ held; no pins outstanding at this point).
  void MaybeEnableConcurrentReadsLocked();
  /// Post-crash, post-recovery: replay recorded txn ids against the durable
  /// high-water mark; demote lost commits and everything that observed them.
  void ReconcileAfterRecovery();
  void RecordMetrics(const Result& result);

  Options options_;
  std::unique_ptr<sim::StrategyDriver> driver_;
  Schedule schedule_;
  LockManager locks_;
  AtomicModelClock clock_;

  /// Static per-op parallelism classification (1 = exclusive).
  std::vector<uint8_t> exclusive_;
  /// Admission threshold: op i may start once retired_ >= admit_need_[i]
  /// (for an exclusive op this equals i — it runs alone).
  std::vector<size_t> admit_need_;

  // Execution state shared by the worker pool.
  std::atomic<size_t> next_op_{0};
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  size_t acquire_turn_ = 0;  ///< locks are claimed in sequence order
  size_t retired_ = 0;       ///< ops [0, retired_) merged and stamped
  bool crashed_stop_ = false;
  std::vector<uint8_t> done_;  ///< executed, awaiting retirement
  std::vector<std::chrono::steady_clock::time_point> done_at_;
  size_t commits_in_batch_ = 0;
  uint64_t commit_batches_ = 0;
  bool pool_concurrent_ = false;

  /// Per-op cost shards; op i's worker binds op_shards_[i] while executing.
  /// exec_mu_ (done-mark → retirement) publishes the writes to the merger.
  std::vector<storage::CostShard> op_shards_;

  // Mutated only by exclusive ops (which run alone) or under exec_mu_.
  sim::ShadowOracle exec_shadow_;
  storage::CostCounters baseline_;  ///< tracker counters after build
  std::vector<OpResult> results_;

  bool ran_ = false;
};

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_VIEW_SERVER_H_
