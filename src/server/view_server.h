#ifndef VIEWMAT_SERVER_VIEW_SERVER_H_
#define VIEWMAT_SERVER_VIEW_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/lock_manager.h"
#include "server/schedule.h"
#include "sim/strategy_driver.h"
#include "storage/cost_tracker.h"

namespace viewmat::server {

/// A VirtualClock the server can publish model time through from whichever
/// worker holds the commit turn, readable by any thread (lock-wait spans
/// begin on threads that do not own the cost tracker).
class AtomicModelClock : public obs::VirtualClock {
 public:
  double NowMs() const override { return ms_.load(std::memory_order_relaxed); }
  void Set(double ms) { ms_.store(ms, std::memory_order_relaxed); }

 private:
  std::atomic<double> ms_{0.0};
};

/// How one scheduled op ended.
enum class OpStatus : uint8_t {
  kCommitted,    ///< update durably committed
  kAborted,      ///< update voluntarily aborted (locks held, undo, release)
  kRejected,     ///< update failed before/at commit and provably did not land
  kSkipped,      ///< never executed (a crash stopped the server earlier)
  kQueryExact,   ///< query answered and matched the expected multiset
  kQueryStale,   ///< query answered but WRONG — a serializability violation
  kQueryFailed,  ///< query errored loudly (only possible in crash runs)
};

const char* OpStatusName(OpStatus s);

/// The multi-client view server: N simulated client sessions issue
/// interleaved update/query transactions against one shared StrategyDriver
/// (base relations + materialized view + maintenance strategy + recovery),
/// executed by a fixed pool of real worker threads under the LockManager's
/// two-phase interval locks.
///
/// Determinism contract (the Calvin-style split the benches rely on):
/// the seeded scheduler fixes the global sequence before any thread runs;
/// workers acquire locks in sequence order (so lock waits only ever point
/// backwards — deadlock-free) and commit in sequence order (the commit
/// turn serializes state transitions and cost charges). Everything logical
/// — op outcomes, per-transaction cost contexts, model time, conflict and
/// wait analysis, the final state digest — is therefore identical at any
/// worker count; only *physical* lock-wait statistics (wall time, blocked
/// counts) vary, and those are reported separately so benches can confine
/// them to the nondeterministic `execution` block.
class ViewServer {
 public:
  struct Options {
    sim::StrategyDriver::Options driver;
    ScheduleOptions schedule;
    size_t workers = 1;
    /// If nonzero, the disk crashes at this (1-based) disk op after the
    /// schedule starts; the server stops, recovers, and reports a
    /// prefix-consistent state.
    size_t crash_at_disk_op = 0;
    /// Optional instrumentation (not owned; may be null). The tracer runs
    /// on the server's atomic model clock and receives server.txn /
    /// server.query spans from the commit turn plus lock.wait spans from
    /// physically blocked workers.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  struct OpResult {
    OpStatus status = OpStatus::kSkipped;
    storage::CostCounters cost;   ///< this op's TxnCostContext delta
    double commit_ms = 0.0;       ///< model clock when the op finished
    double arrive_ms = 0.0;       ///< logical arrival (client's prev commit)
    double logical_wait_ms = 0.0; ///< lock-wait under the logical model
    bool physically_blocked = false;  ///< nondeterministic; execution-only
  };

  struct Result {
    std::vector<OpResult> ops;  ///< indexed by schedule sequence

    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t rejected = 0;
    uint64_t skipped = 0;
    uint64_t queries_exact = 0;
    uint64_t queries_stale = 0;
    uint64_t queries_failed = 0;

    uint64_t logical_conflicts = 0;
    uint64_t conflicts_rw = 0;
    uint64_t conflicts_ww = 0;
    double logical_wait_ms = 0.0;

    double model_ms = 0.0;        ///< model time the schedule consumed
    double throughput_tps = 0.0;  ///< committed txns per model second
    storage::CostCounters total_cost;  ///< sum of all op contexts

    bool crashed = false;
    uint64_t recoveries = 0;
    uint64_t state_digest = 0;  ///< StateDigest of the converged final state

    /// Physical lock statistics — wall time and actual blocking, which
    /// depend on the worker count and machine. Never fold these into a
    /// deterministic report section.
    LockManager::Stats lock_stats;
  };

  /// Builds the driver (healthy load), the schedule, and the analysis.
  static StatusOr<std::unique_ptr<ViewServer>> Create(const Options& options);

  ViewServer(const ViewServer&) = delete;
  ViewServer& operator=(const ViewServer&) = delete;

  /// Executes the whole schedule on the worker pool. One-shot.
  StatusOr<Result> Run();

  const Schedule& schedule() const { return schedule_; }
  sim::StrategyDriver* driver() { return driver_.get(); }

 private:
  explicit ViewServer(const Options& options) : options_(options) {}

  void WorkerLoop();
  /// Executes op `i` while holding the commit turn. Returns false when the
  /// disk crashed under the op (the server stops executing).
  bool ExecuteOp(size_t i);
  void RecordMetrics(const Result& result);

  Options options_;
  std::unique_ptr<sim::StrategyDriver> driver_;
  Schedule schedule_;
  LockManager locks_;
  AtomicModelClock clock_;

  // Execution state shared by the worker pool.
  std::atomic<size_t> next_op_{0};
  std::mutex turn_mu_;
  std::condition_variable turn_cv_;
  size_t acquire_turn_ = 0;
  size_t commit_turn_ = 0;
  bool crashed_ = false;

  // Commit-turn-only state (guarded by holding the turn, not a mutex).
  sim::ShadowOracle exec_shadow_;
  storage::CostCounters baseline_;  ///< tracker counters after build
  std::vector<OpResult> results_;
  /// Sequence index + txn id of an update whose commit is ambiguous after
  /// a crash (error after the driver issued a txn id); resolved against
  /// the recovered log's high-water mark.
  size_t ambiguous_op_ = SIZE_MAX;
  uint64_t ambiguous_txn_id_ = 0;

  bool ran_ = false;
};

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_VIEW_SERVER_H_
