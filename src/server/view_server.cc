#include "server/view_server.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace viewmat::server {

namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* OpStatusName(OpStatus s) {
  switch (s) {
    case OpStatus::kCommitted:
      return "committed";
    case OpStatus::kAborted:
      return "aborted";
    case OpStatus::kRejected:
      return "rejected";
    case OpStatus::kSkipped:
      return "skipped";
    case OpStatus::kQueryExact:
      return "query_exact";
    case OpStatus::kQueryStale:
      return "query_stale";
    case OpStatus::kQueryFailed:
      return "query_failed";
  }
  return "?";
}

StatusOr<std::unique_ptr<ViewServer>> ViewServer::Create(
    const Options& options) {
  // Every rejection names the offending field, so a misconfigured bench or
  // harness fails with a message that points straight at the knob.
  if (options.workers == 0) {
    return Status::InvalidArgument(
        "ViewServer::Options::workers must be > 0");
  }
  if (options.schedule.clients == 0) {
    return Status::InvalidArgument(
        "ViewServer::Options::schedule.clients must be > 0 (empty schedule)");
  }
  if (options.schedule.ops_per_client == 0) {
    return Status::InvalidArgument(
        "ViewServer::Options::schedule.ops_per_client must be > 0 "
        "(empty schedule)");
  }
  if (options.driver.group_commit && options.commit_batch == 0) {
    return Status::InvalidArgument(
        "ViewServer::Options::commit_batch must be >= 1 when "
        "driver.group_commit is set");
  }
  std::unique_ptr<ViewServer> server(new ViewServer(options));
  VIEWMAT_ASSIGN_OR_RETURN(server->driver_,
                           sim::StrategyDriver::Create(options.driver));
  server->schedule_ = BuildSchedule(options.schedule, server->driver_.get());
  AnalyzeSchedule(&server->schedule_);
  server->ClassifyOps();
  server->exec_shadow_ = sim::MakeShadow(*server->driver_->scenario());
  server->baseline_ = server->driver_->tracker()->counters();
  server->results_.resize(server->schedule_.ops.size());
  if (options.tracer != nullptr) options.tracer->SetClock(&server->clock_);
  return server;
}

void ViewServer::ClassifyOps() {
  const size_t n = schedule_.ops.size();
  exclusive_.assign(n, 0);
  admit_need_.assign(n, 0);

  // Pass 1 — EXCLUSIVE or PARALLEL, from the schedule and the strategy kind
  // alone (never from runtime state, so the classification — and therefore
  // the whole admission order — is identical at any worker count).
  //
  // Every update is exclusive: it mutates base/AD/WAL state. A query is
  // parallel only when its strategy's read path is provably pure:
  //  - query-modification and immediate never defer work to the read path;
  //  - deferred and recompute-on-change fold/recompute on the first query
  //    after a committed update (exclusive), after which their read paths
  //    early-out until the next update dirties them again;
  //  - hybrid's optimizer may pick the QM path, which serves the query
  //    WITHOUT draining the differential — any query after the first
  //    committed update could still choose the refresh path, so all of them
  //    stay exclusive;
  //  - snapshot queries are never refreshed mid-schedule, but the strategy
  //    offers no purity guarantee worth racing on (its read path shares the
  //    periodic-refresh machinery), so they stay exclusive.
  bool pending = false;     // committed-update work awaiting the next fold
  bool any_update = false;  // any non-aborted update so far
  for (size_t i = 0; i < n; ++i) {
    const ScheduledOp& op = schedule_.ops[i];
    bool excl = true;
    if (op.kind == OpKind::kUpdate) {
      if (!op.voluntary_abort) {
        pending = true;
        any_update = true;
      }
    } else {
      switch (options_.driver.kind) {
        case sim::StrategyKind::kQueryModification:
        case sim::StrategyKind::kImmediate:
          excl = false;
          break;
        case sim::StrategyKind::kDeferred:
        case sim::StrategyKind::kRecomputeOnChange:
          excl = pending;
          pending = false;  // the exclusive query folds / recomputes
          break;
        case sim::StrategyKind::kHybrid:
          excl = any_update;
          break;
        case sim::StrategyKind::kSnapshot:
          excl = true;
          break;
      }
    }
    exclusive_[i] = excl ? 1 : 0;
  }

  // Pass 2 — admission thresholds. An exclusive op must run alone, so it
  // waits for every predecessor to retire (threshold i); once it retires,
  // the parallel ops after it may overlap each other freely until the next
  // exclusive op (threshold = index one past the last exclusive op). No
  // later op can ever be admitted alongside an exclusive op: every j > i
  // has a threshold of at least i + 1.
  size_t last_excl_end = 0;
  for (size_t i = 0; i < n; ++i) {
    admit_need_[i] = exclusive_[i] != 0 ? i : last_excl_end;
    if (exclusive_[i] != 0) last_excl_end = i + 1;
  }
}

bool ViewServer::ExecuteOp(size_t i) {
  const ScheduledOp& op = schedule_.ops[i];
  OpResult& r = results_[i];
  storage::CostTracker* tracker = driver_->tracker();
  obs::Tracer* tracer = options_.tracer;
  uint32_t span = 0;
  if (tracer != nullptr) {
    span = tracer->BeginSpan(op.kind == OpKind::kUpdate ? "server.txn"
                                                        : "server.query");
  }
  // Every charge this op makes — from any structure it touches — lands in
  // its private shard; the retirement pipeline merges shards in sequence
  // order, so the tracker's running totals replay the serial execution.
  storage::ShardScope shard(tracker, &op_shards_[i]);

  if (op.kind == OpKind::kUpdate) {
    db::Transaction txn = BuildUpdateTxn(exec_shadow_, op, driver_->base());
    if (op.voluntary_abort) {
      // begin → acquire → abort: undo the unapplied net changes and walk
      // away; the base was never touched, so there is nothing to recover.
      txn.Abort();
      r.status = OpStatus::kAborted;
    } else {
      const uint64_t seq_before = driver_->txn_seq();
      const Status st = driver_->OnTransaction(txn);
      if (driver_->txn_seq() != seq_before) r.txn_id = driver_->txn_seq();
      if (st.ok()) {
        txn.MarkCommitted();
        AdvanceShadow(op, &exec_shadow_);
        r.status = OpStatus::kCommitted;
      } else {
        // Provisional when a txn id was issued: the commit record may have
        // landed before the crash. ReconcileAfterRecovery resolves it (and,
        // under group commit, re-audits every acknowledged commit) against
        // the recovered log's high-water mark.
        r.status = OpStatus::kRejected;
      }
    }
  } else {
    sim::ViewMultiset got;
    const Status st = driver_->Query(
        op.lo, op.hi, [&](const db::Tuple& value, int64_t count) {
          got[value] += count;
          return true;
        });
    if (!st.ok()) {
      r.status = OpStatus::kQueryFailed;  // loud failure: crash runs only
    } else {
      r.status = got == op.expected ? OpStatus::kQueryExact
                                    : OpStatus::kQueryStale;
    }
  }

  if (tracer != nullptr) tracer->EndSpan(span);
  return !driver_->disk()->crashed();
}

void ViewServer::RetireLocked() {
  const size_t i = retired_;
  OpResult& r = results_[i];
  storage::CostTracker* tracker = driver_->tracker();

  // Group-commit batch boundary: one device sync covers every commit record
  // buffered since the previous boundary, plus a final sync at the end of
  // the schedule so a healthy run leaves no unsynced tail for Converge's
  // recovery pass to lose. The sync runs with the retiring op's shard bound
  // so its I/O charges join that op's cost — keeping Σ per-op shards equal
  // to the tracker totals, sync included.
  if (options_.driver.group_commit && !crashed_stop_) {
    if (r.status == OpStatus::kCommitted &&
        schedule_.ops[i].kind == OpKind::kUpdate) {
      ++commits_in_batch_;
    }
    const bool last = i + 1 == schedule_.ops.size();
    if (commits_in_batch_ > 0 &&
        (commits_in_batch_ >= options_.commit_batch || last)) {
      storage::ShardScope bind(tracker, &op_shards_[i]);
      const Status st = driver_->SyncWal();
      if (!st.ok() || driver_->disk()->crashed()) crashed_stop_ = true;
      commits_in_batch_ = 0;
      ++commit_batches_;
    }
  }

  tracker->MergeShard(op_shards_[i]);
  r.cost = op_shards_[i].flat;
  r.commit_ms = tracker->Ms(tracker->counters() - baseline_);
  clock_.Set(r.commit_ms);
  r.physical_commit_wait_ms = WallMsSince(done_at_[i]);
  ++retired_;
}

void ViewServer::MaybeEnableConcurrentReadsLocked() {
  if (crashed_stop_ || pool_concurrent_) return;
  if (retired_ < schedule_.ops.size() && exclusive_[retired_] == 0) {
    // The op whose retirement got us here ran alone (it was exclusive, or
    // the mode would already be on), so no frame is pinned: safe to flip.
    // Parallel ops admitted from here read through the pool without LRU
    // maintenance, leaving the replacement state byte-identical to a serial
    // run no matter how their reads interleave.
    driver_->pool()->SetConcurrentReads(true);
    pool_concurrent_ = true;
  }
}

void ViewServer::WorkerLoop() {
  obs::Tracer* tracer = options_.tracer;
  if (tracer != nullptr) tracer->NewTrack("server.worker");
  const size_t n = schedule_.ops.size();
  for (;;) {
    const size_t i = next_op_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    const ScheduledOp& op = schedule_.ops[i];

    // Stage 1 — ordered lock acquisition: lock sets are claimed in sequence
    // order, so a blocked acquire only ever waits for earlier transactions
    // (deadlock-free), and the no-barging stripes grant in commit-LSN
    // order. The turnstile serializes only the acquire calls themselves;
    // execution overlaps freely afterwards.
    bool skip;
    {
      std::unique_lock<std::mutex> lock(exec_mu_);
      exec_cv_.wait(lock, [&] { return acquire_turn_ == i; });
      skip = crashed_stop_;
    }
    if (!skip && !locks_.TryAcquire(op.seq, op.locks)) {
      // Physically blocked on an earlier holder: wait under a lock.wait
      // span. Whether this branch runs depends on worker count and timing
      // — it never affects the logical outcome, only physical stats.
      results_[i].physically_blocked = true;
      uint32_t span = 0;
      if (tracer != nullptr) span = tracer->BeginSpan("lock.wait");
      const LockManager::AcquireResult res = locks_.Acquire(op.seq, op.locks);
      results_[i].physical_lock_wait_ms = res.wall_wait_ms;
      if (tracer != nullptr) tracer->EndSpan(span);
    }
    {
      std::lock_guard<std::mutex> lock(exec_mu_);
      ++acquire_turn_;
    }
    exec_cv_.notify_all();

    // Stage 2 — admission: wait until the retirement frontier reaches this
    // op's threshold. Exclusive ops start only when everything before them
    // has retired (they run truly alone); parallel ops overlap each other.
    bool run_op;
    {
      std::unique_lock<std::mutex> lock(exec_mu_);
      exec_cv_.wait(lock,
                    [&] { return crashed_stop_ || retired_ >= admit_need_[i]; });
      run_op = !crashed_stop_ && !skip;
      if (run_op && exclusive_[i] != 0 && pool_concurrent_) {
        // This op runs alone and may mutate pages; put the pool back into
        // its serial (LRU-maintaining) mode before it touches anything.
        driver_->pool()->SetConcurrentReads(false);
        pool_concurrent_ = false;
      }
    }

    bool ok = true;
    if (run_op) ok = ExecuteOp(i);
    if (!skip) locks_.Release(op.seq);

    // Stage 3 — done-mark and opportunistic retirement: whichever worker
    // completes the op at the frontier drains the queue, so no worker ever
    // waits for its own op to retire before claiming the next one.
    {
      std::lock_guard<std::mutex> lock(exec_mu_);
      if (!ok) crashed_stop_ = true;
      done_[i] = 1;
      done_at_[i] = std::chrono::steady_clock::now();
      while (retired_ < n && done_[retired_] != 0) RetireLocked();
      MaybeEnableConcurrentReadsLocked();
    }
    exec_cv_.notify_all();
  }
}

StatusOr<ViewServer::Result> ViewServer::Run() {
  if (ran_) return Status::Internal("ViewServer::Run is one-shot");
  ran_ = true;
  const size_t n = schedule_.ops.size();

  if (options_.crash_at_disk_op > 0) {
    driver_->disk()->ScriptCrashAtOp(options_.crash_at_disk_op);
  }
  done_.assign(n, 0);
  done_at_.assign(n, std::chrono::steady_clock::time_point());
  op_shards_ = std::vector<storage::CostShard>(n);
  // The build thread makes no further direct charges: workers charge their
  // shards, and retirement merges under exec_mu_.
  driver_->tracker()->TransferOwnership();
  driver_->tracker()->BeginShardedMode();
  if (n > 0 && exclusive_[0] == 0) {
    driver_->pool()->SetConcurrentReads(true);
    pool_concurrent_ = true;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const size_t workers = std::min<size_t>(options_.workers, n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this] { WorkerLoop(); });
  }
  for (std::thread& t : pool) t.join();
  const double wall_ms = WallMsSince(wall_start);

  driver_->tracker()->EndShardedMode();
  if (pool_concurrent_) {
    driver_->pool()->SetConcurrentReads(false);
    pool_concurrent_ = false;
  }

  Result result;
  result.crashed = crashed_stop_;
  result.wall_ms = wall_ms;
  result.commit_batches = commit_batches_;
  // Model time consumed by the schedule itself (recovery/convergence and
  // the digest query below are deliberately excluded — they are epilogue).
  result.model_ms =
      driver_->tracker()->Ms(driver_->tracker()->counters() - baseline_);

  if (crashed_stop_) {
    driver_->disk()->ClearFaults();
    if (driver_->disk()->crashed()) driver_->disk()->Restart();
    if (options_.driver.group_commit) {
      // Volatile state dies with the crash: cached pages may hold eager
      // applies of commits whose records never synced, and recovery must
      // not see them. Pages already written back obeyed the WAL rule
      // (record durable before page), so the device itself is consistent
      // with the durable log.
      VIEWMAT_RETURN_IF_ERROR(driver_->pool()->DiscardAll());
      // The log's staged-but-unsynced tail dies with it. If it survived,
      // Converge()'s quiesce sync below would write it back to the
      // restarted device and resurrect the very transactions the crash
      // lost — after reconciliation already declared them lost.
      VIEWMAT_RETURN_IF_ERROR(driver_->DiscardVolatileWal());
    }
    Status recovered = Status::Internal("not attempted");
    for (int attempt = 0; attempt < 4 && !recovered.ok(); ++attempt) {
      recovered = driver_->Recover();
    }
    VIEWMAT_RETURN_IF_ERROR(recovered);
    ReconcileAfterRecovery();
  }
  VIEWMAT_RETURN_IF_ERROR(driver_->Converge());
  VIEWMAT_ASSIGN_OR_RETURN(result.state_digest, StateDigest(driver_.get()));
  result.recoveries = driver_->recoveries();

  // Logical wait analysis on the committed timeline: an op "arrives" when
  // its client's previous op committed and is granted once every
  // conflicting in-window predecessor has committed. Deterministic — it
  // reads only schedule analysis and model-clock commit stamps.
  std::vector<double> client_last(options_.schedule.clients, 0.0);
  for (size_t i = 0; i < results_.size(); ++i) {
    OpResult& r = results_[i];
    const ScheduledOp& op = schedule_.ops[i];
    if (r.status == OpStatus::kSkipped) {
      ++result.skipped;
      continue;
    }
    r.arrive_ms = client_last[op.client];
    double grant = r.arrive_ms;
    for (const uint32_t j : op.conflict_preds) {
      if (results_[j].status != OpStatus::kSkipped) {
        grant = std::max(grant, results_[j].commit_ms);
      }
    }
    r.logical_wait_ms = grant - r.arrive_ms;
    result.logical_wait_ms += r.logical_wait_ms;
    result.logical_conflicts += op.conflict_preds.size();
    result.conflicts_rw += op.conflicts_rw;
    result.conflicts_ww += op.conflicts_ww;
    client_last[op.client] = r.commit_ms;
    result.total_cost += r.cost;
    if (exclusive_[i] != 0) {
      ++result.exclusive_ops;
    } else {
      ++result.parallel_ops;
    }

    switch (r.status) {
      case OpStatus::kCommitted:
        ++result.committed;
        break;
      case OpStatus::kAborted:
        ++result.aborted;
        break;
      case OpStatus::kRejected:
        ++result.rejected;
        break;
      case OpStatus::kQueryExact:
        ++result.queries_exact;
        break;
      case OpStatus::kQueryStale:
        ++result.queries_stale;
        break;
      case OpStatus::kQueryFailed:
        ++result.queries_failed;
        break;
      case OpStatus::kSkipped:
        break;
    }
  }
  result.throughput_tps =
      result.model_ms > 0.0
          ? static_cast<double>(result.committed) / (result.model_ms / 1000.0)
          : 0.0;
  result.lock_stats = locks_.stats();
  result.ops = results_;
  RecordMetrics(result);
  return result;
}

void ViewServer::ReconcileAfterRecovery() {
  // The durable log is the sole authority on what committed. Transaction
  // ids are issued in sequence order (updates execute alone), so the lost
  // commits — ids above the recovered high-water mark — form a suffix of
  // the acknowledged commits: log prefixes are durable, suffixes are not.
  const uint64_t high = driver_->committed_txn_high_water();
  bool lost = false;
  for (size_t i = 0; i < results_.size(); ++i) {
    const ScheduledOp& op = schedule_.ops[i];
    OpResult& r = results_[i];
    if (op.kind == OpKind::kUpdate) {
      if (r.status == OpStatus::kCommitted && r.txn_id > high) {
        // Acknowledged to the client, but the buffered commit record never
        // reached the device before the crash.
        r.status = OpStatus::kRejected;
        lost = true;
      } else if (r.status == OpStatus::kRejected && r.txn_id != 0 &&
                 r.txn_id <= high) {
        // The ambiguous in-flight commit (errored after its id was issued):
        // its record survived after all.
        r.status = OpStatus::kCommitted;
        AdvanceShadow(op, &exec_shadow_);
      }
    } else if (lost && (r.status == OpStatus::kQueryExact ||
                        r.status == OpStatus::kQueryStale)) {
      // The query answered against state containing a commit the crash
      // erased; its verdict describes a timeline that no longer exists.
      r.status = OpStatus::kSkipped;
    }
  }
}

void ViewServer::RecordMetrics(const Result& result) {
  obs::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  const obs::Labels labels = {
      {"strategy", sim::StrategyKindName(options_.driver.kind)},
      {"model", options_.driver.model == 1 ? "1" : "2"}};
  m->GetCounter("server.txn.committed", labels)->Increment(result.committed);
  m->GetCounter("server.txn.aborted", labels)->Increment(result.aborted);
  m->GetCounter("server.txn.rejected", labels)->Increment(result.rejected);
  m->GetCounter("server.txn.skipped", labels)->Increment(result.skipped);
  m->GetCounter("server.query.exact", labels)
      ->Increment(result.queries_exact);
  m->GetCounter("server.query.stale", labels)
      ->Increment(result.queries_stale);
  m->GetCounter("server.query.failed", labels)
      ->Increment(result.queries_failed);
  m->GetCounter("server.lock.conflicts", labels)
      ->Increment(result.logical_conflicts);
  m->GetCounter("server.ops.parallel", labels)
      ->Increment(result.parallel_ops);
  m->GetCounter("server.ops.exclusive", labels)
      ->Increment(result.exclusive_ops);
  m->GetCounter("server.commit.batches", labels)
      ->Increment(result.commit_batches);
  obs::Histogram* wait = m->GetHistogram(
      "server.lock.logical_wait_ms", labels,
      {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  for (const OpResult& r : result.ops) {
    if (r.status != OpStatus::kSkipped) wait->Observe(r.logical_wait_ms);
  }
}

}  // namespace viewmat::server
