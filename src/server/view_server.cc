#include "server/view_server.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace viewmat::server {

const char* OpStatusName(OpStatus s) {
  switch (s) {
    case OpStatus::kCommitted:
      return "committed";
    case OpStatus::kAborted:
      return "aborted";
    case OpStatus::kRejected:
      return "rejected";
    case OpStatus::kSkipped:
      return "skipped";
    case OpStatus::kQueryExact:
      return "query_exact";
    case OpStatus::kQueryStale:
      return "query_stale";
    case OpStatus::kQueryFailed:
      return "query_failed";
  }
  return "?";
}

StatusOr<std::unique_ptr<ViewServer>> ViewServer::Create(
    const Options& options) {
  if (options.workers == 0) {
    return Status::InvalidArgument("ViewServer needs at least one worker");
  }
  if (options.schedule.clients == 0 || options.schedule.ops_per_client == 0) {
    return Status::InvalidArgument("ViewServer needs clients and ops");
  }
  std::unique_ptr<ViewServer> server(new ViewServer(options));
  VIEWMAT_ASSIGN_OR_RETURN(server->driver_,
                           sim::StrategyDriver::Create(options.driver));
  server->schedule_ = BuildSchedule(options.schedule, server->driver_.get());
  AnalyzeSchedule(&server->schedule_);
  server->exec_shadow_ = sim::MakeShadow(*server->driver_->scenario());
  server->baseline_ = server->driver_->tracker()->counters();
  server->results_.resize(server->schedule_.ops.size());
  if (options.tracer != nullptr) options.tracer->SetClock(&server->clock_);
  return server;
}

bool ViewServer::ExecuteOp(size_t i) {
  const ScheduledOp& op = schedule_.ops[i];
  OpResult& r = results_[i];
  storage::CostTracker* tracker = driver_->tracker();
  // The previous commit-turn holder is done with the tracker; the turn
  // mutex serializes the handoff, the claim moves to this thread on its
  // first charge.
  tracker->TransferOwnership();
  obs::Tracer* tracer = options_.tracer;
  uint32_t span = 0;
  if (tracer != nullptr) {
    span = tracer->BeginSpan(op.kind == OpKind::kUpdate ? "server.txn"
                                                        : "server.query");
  }
  storage::TxnCostContext ctx;
  ctx.Begin(tracker);

  if (op.kind == OpKind::kUpdate) {
    db::Transaction txn = BuildUpdateTxn(exec_shadow_, op, driver_->base());
    if (op.voluntary_abort) {
      // begin → acquire → abort: undo the unapplied net changes and walk
      // away; the base was never touched, so there is nothing to recover.
      txn.Abort();
      r.status = OpStatus::kAborted;
    } else {
      const uint64_t seq_before = driver_->txn_seq();
      const Status st = driver_->OnTransaction(txn);
      if (st.ok()) {
        txn.MarkCommitted();
        AdvanceShadow(op, &exec_shadow_);
        r.status = OpStatus::kCommitted;
      } else if (driver_->txn_seq() == seq_before) {
        // Failed before a txn id was issued: provably not committed.
        r.status = OpStatus::kRejected;
      } else {
        // Ambiguous — the commit record may have landed before the crash.
        // Resolved against the recovered log after the pool drains.
        ambiguous_op_ = i;
        ambiguous_txn_id_ = driver_->txn_seq();
        r.status = OpStatus::kRejected;  // provisional
      }
    }
  } else {
    sim::ViewMultiset got;
    const Status st = driver_->Query(
        op.lo, op.hi, [&](const db::Tuple& value, int64_t count) {
          got[value] += count;
          return true;
        });
    if (!st.ok()) {
      r.status = OpStatus::kQueryFailed;  // loud failure: crash runs only
    } else {
      r.status = got == op.expected ? OpStatus::kQueryExact
                                    : OpStatus::kQueryStale;
    }
  }

  ctx.End(tracker);
  r.cost = ctx.flat();
  r.commit_ms = tracker->Ms(tracker->counters() - baseline_);
  clock_.Set(r.commit_ms);
  if (tracer != nullptr) tracer->EndSpan(span);
  return !driver_->disk()->crashed();
}

void ViewServer::WorkerLoop() {
  obs::Tracer* tracer = options_.tracer;
  if (tracer != nullptr) tracer->NewTrack("server.worker");
  for (;;) {
    const size_t i = next_op_.fetch_add(1, std::memory_order_relaxed);
    if (i >= schedule_.ops.size()) return;
    const ScheduledOp& op = schedule_.ops[i];

    // Acquire turn: lock sets are claimed in sequence order, so a blocked
    // acquire only ever waits for earlier transactions — deadlock-free.
    {
      std::unique_lock<std::mutex> lock(turn_mu_);
      turn_cv_.wait(lock, [&] { return acquire_turn_ == i; });
    }
    bool skip;
    {
      std::lock_guard<std::mutex> lock(turn_mu_);
      skip = crashed_;
    }
    if (!skip && !locks_.TryAcquire(op.seq, op.locks)) {
      // Physically blocked on an earlier holder: wait under a lock.wait
      // span. Whether this branch runs depends on worker count and timing
      // — it never affects the logical outcome, only physical stats.
      results_[i].physically_blocked = true;
      if (tracer != nullptr) {
        const uint32_t span = tracer->BeginSpan("lock.wait");
        locks_.Acquire(op.seq, op.locks);
        tracer->EndSpan(span);
      } else {
        locks_.Acquire(op.seq, op.locks);
      }
    }
    {
      std::lock_guard<std::mutex> lock(turn_mu_);
      ++acquire_turn_;
    }
    turn_cv_.notify_all();

    // Commit turn: state transitions and cost charges happen strictly in
    // sequence order (= commit LSN order).
    {
      std::unique_lock<std::mutex> lock(turn_mu_);
      turn_cv_.wait(lock, [&] { return commit_turn_ == i; });
      if (crashed_ || skip) {
        results_[i].status = OpStatus::kSkipped;
        results_[i].commit_ms = clock_.NowMs();
      } else if (!ExecuteOp(i)) {
        crashed_ = true;
      }
      ++commit_turn_;
    }
    turn_cv_.notify_all();
    locks_.Release(op.seq);
  }
}

StatusOr<ViewServer::Result> ViewServer::Run() {
  if (ran_) return Status::Internal("ViewServer::Run is one-shot");
  ran_ = true;

  if (options_.crash_at_disk_op > 0) {
    driver_->disk()->ScriptCrashAtOp(options_.crash_at_disk_op);
  }
  // The build thread is done with the tracker until the pool drains.
  driver_->tracker()->TransferOwnership();

  const size_t workers =
      std::min<size_t>(options_.workers, schedule_.ops.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([this] { WorkerLoop(); });
  }
  for (std::thread& t : pool) t.join();
  driver_->tracker()->TransferOwnership();  // back to the coordinator

  Result result;
  result.crashed = crashed_;
  // Model time consumed by the schedule itself (recovery/convergence and
  // the digest query below are deliberately excluded — they are epilogue).
  result.model_ms =
      driver_->tracker()->Ms(driver_->tracker()->counters() - baseline_);

  if (crashed_) {
    driver_->disk()->ClearFaults();
    if (driver_->disk()->crashed()) driver_->disk()->Restart();
    Status recovered = Status::Internal("not attempted");
    for (int attempt = 0; attempt < 4 && !recovered.ok(); ++attempt) {
      recovered = driver_->Recover();
    }
    VIEWMAT_RETURN_IF_ERROR(recovered);
    if (ambiguous_op_ != SIZE_MAX) {
      // The durable commit record decides the in-flight transaction.
      if (driver_->committed_txn_high_water() >= ambiguous_txn_id_) {
        results_[ambiguous_op_].status = OpStatus::kCommitted;
        AdvanceShadow(schedule_.ops[ambiguous_op_], &exec_shadow_);
      }
    }
  }
  VIEWMAT_RETURN_IF_ERROR(driver_->Converge());
  VIEWMAT_ASSIGN_OR_RETURN(result.state_digest, StateDigest(driver_.get()));
  result.recoveries = driver_->recoveries();

  // Logical wait analysis on the committed timeline: an op "arrives" when
  // its client's previous op committed and is granted once every
  // conflicting in-window predecessor has committed. Deterministic — it
  // reads only schedule analysis and model-clock commit stamps.
  std::vector<double> client_last(options_.schedule.clients, 0.0);
  for (size_t i = 0; i < results_.size(); ++i) {
    OpResult& r = results_[i];
    const ScheduledOp& op = schedule_.ops[i];
    if (r.status == OpStatus::kSkipped) {
      ++result.skipped;
      continue;
    }
    r.arrive_ms = client_last[op.client];
    double grant = r.arrive_ms;
    for (const uint32_t j : op.conflict_preds) {
      if (results_[j].status != OpStatus::kSkipped) {
        grant = std::max(grant, results_[j].commit_ms);
      }
    }
    r.logical_wait_ms = grant - r.arrive_ms;
    result.logical_wait_ms += r.logical_wait_ms;
    result.logical_conflicts += op.conflict_preds.size();
    result.conflicts_rw += op.conflicts_rw;
    result.conflicts_ww += op.conflicts_ww;
    client_last[op.client] = r.commit_ms;
    result.total_cost += r.cost;

    switch (r.status) {
      case OpStatus::kCommitted:
        ++result.committed;
        break;
      case OpStatus::kAborted:
        ++result.aborted;
        break;
      case OpStatus::kRejected:
        ++result.rejected;
        break;
      case OpStatus::kQueryExact:
        ++result.queries_exact;
        break;
      case OpStatus::kQueryStale:
        ++result.queries_stale;
        break;
      case OpStatus::kQueryFailed:
        ++result.queries_failed;
        break;
      case OpStatus::kSkipped:
        break;
    }
  }
  result.throughput_tps =
      result.model_ms > 0.0
          ? static_cast<double>(result.committed) / (result.model_ms / 1000.0)
          : 0.0;
  result.lock_stats = locks_.stats();
  result.ops = results_;
  RecordMetrics(result);
  return result;
}

void ViewServer::RecordMetrics(const Result& result) {
  obs::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  const obs::Labels labels = {
      {"strategy", sim::StrategyKindName(options_.driver.kind)},
      {"model", options_.driver.model == 1 ? "1" : "2"}};
  m->GetCounter("server.txn.committed", labels)->Increment(result.committed);
  m->GetCounter("server.txn.aborted", labels)->Increment(result.aborted);
  m->GetCounter("server.txn.rejected", labels)->Increment(result.rejected);
  m->GetCounter("server.txn.skipped", labels)->Increment(result.skipped);
  m->GetCounter("server.query.exact", labels)
      ->Increment(result.queries_exact);
  m->GetCounter("server.query.stale", labels)
      ->Increment(result.queries_stale);
  m->GetCounter("server.query.failed", labels)
      ->Increment(result.queries_failed);
  m->GetCounter("server.lock.conflicts", labels)
      ->Increment(result.logical_conflicts);
  obs::Histogram* wait = m->GetHistogram(
      "server.lock.logical_wait_ms", labels,
      {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  for (const OpResult& r : result.ops) {
    if (r.status != OpStatus::kSkipped) wait->Observe(r.logical_wait_ms);
  }
}

}  // namespace viewmat::server
