#include "server/lock_manager.h"

#include <chrono>

namespace viewmat::server {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

namespace {

bool ModesConflict(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

bool RequestsConflict(const LockRequest& a, const LockRequest& b) {
  if (a.relation_id != b.relation_id) return false;
  if (!ModesConflict(a.mode, b.mode)) return false;
  return !db::IntervalSet::Intersect(a.keys, b.keys).empty();
}

}  // namespace

bool Conflicts(const LockSet& a, const LockSet& b) {
  for (const LockRequest& ra : a) {
    for (const LockRequest& rb : b) {
      if (RequestsConflict(ra, rb)) return true;
    }
  }
  return false;
}

bool LockManager::Blocked(uint64_t txn, const LockSet& set) const {
  for (const auto& [holder, held] : held_) {
    if (holder != txn && Conflicts(set, held)) return true;
  }
  // Yield to earlier conflicting waiters so grants follow transaction-id
  // (= commit LSN) order instead of racing on wakeup.
  for (const auto& [waiter, pending] : waiting_) {
    if (waiter < txn && Conflicts(set, *pending)) return true;
  }
  return false;
}

LockManager::AcquireResult LockManager::Acquire(uint64_t txn,
                                                const LockSet& set) {
  AcquireResult result;
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquires;
  if (Blocked(txn, set)) {
    result.blocked = true;
    ++stats_.blocked_acquires;
    waiting_.emplace(txn, &set);
    const auto t0 = std::chrono::steady_clock::now();
    cv_.wait(lock, [&] { return !Blocked(txn, set); });
    const auto t1 = std::chrono::steady_clock::now();
    result.wall_wait_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats_.wall_wait_ms += result.wall_wait_ms;
    waiting_.erase(txn);
    // Removing a waiter can unblock a later waiter that was only yielding
    // to this one, so wake the others to re-evaluate.
    cv_.notify_all();
  }
  LockSet& held = held_[txn];
  held.insert(held.end(), set.begin(), set.end());
  return result;
}

bool LockManager::TryAcquire(uint64_t txn, const LockSet& set) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  if (Blocked(txn, set)) return false;
  LockSet& held = held_[txn];
  held.insert(held.end(), set.begin(), set.end());
  return true;
}

void LockManager::Release(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (held_.erase(txn) == 0) return;
  ++stats_.releases;
  cv_.notify_all();
}

size_t LockManager::HeldCount(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

LockManager::Stats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace viewmat::server
