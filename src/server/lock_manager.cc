#include "server/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace viewmat::server {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

namespace {

bool ModesConflict(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

bool RequestsConflict(const LockRequest& a, const LockRequest& b) {
  if (a.relation_id != b.relation_id) return false;
  if (!ModesConflict(a.mode, b.mode)) return false;
  return !db::IntervalSet::Intersect(a.keys, b.keys).empty();
}

/// Floor division by the block size (C++20 guarantees arithmetic >> for
/// signed operands, so negative keys land in the right block).
int64_t BlockOf(int64_t key) {
  static_assert((LockManager::kKeysPerBlock &
                 (LockManager::kKeysPerBlock - 1)) == 0,
                "block size must be a power of two");
  constexpr int shift = 3;
  static_assert((int64_t{1} << shift) == LockManager::kKeysPerBlock);
  return key >> shift;
}

}  // namespace

bool Conflicts(const LockSet& a, const LockSet& b) {
  for (const LockRequest& ra : a) {
    for (const LockRequest& rb : b) {
      if (RequestsConflict(ra, rb)) return true;
    }
  }
  return false;
}

LockManager::LockManager(uint32_t stripes_per_relation)
    : stripes_per_relation_(std::max<uint32_t>(1, stripes_per_relation)) {
  stripes_.reserve(static_cast<size_t>(stripes_per_relation_) * kMaxRelations);
  for (size_t i = 0; i < stripes_per_relation_ * kMaxRelations; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::vector<uint32_t> LockManager::StripesOf(const LockSet& set) const {
  std::vector<uint32_t> out;
  const int64_t s = stripes_per_relation_;
  for (const LockRequest& req : set) {
    const uint32_t base = (req.relation_id % kMaxRelations) *
                          stripes_per_relation_;
    for (const db::Interval& iv : req.keys.intervals()) {
      if (!iv.lo || !iv.hi) {
        // Unbounded on either side: the interval touches every block class.
        for (int64_t k = 0; k < s; ++k) {
          out.push_back(base + static_cast<uint32_t>(k));
        }
        continue;
      }
      const int64_t first = BlockOf(*iv.lo);
      const int64_t last = BlockOf(*iv.hi);
      // Wide interval: ≥ one full round of blocks covers every stripe.
      // Unsigned subtraction handles the INT64 extremes without overflow.
      if (static_cast<uint64_t>(last) - static_cast<uint64_t>(first) >=
          static_cast<uint64_t>(s)) {
        for (int64_t k = 0; k < s; ++k) {
          out.push_back(base + static_cast<uint32_t>(k));
        }
        continue;
      }
      for (int64_t b = first; b <= last; ++b) {
        const int64_t m = ((b % s) + s) % s;
        out.push_back(base + static_cast<uint32_t>(m));
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool LockManager::BlockedInStripe(const Stripe& stripe, uint64_t txn,
                                  const LockSet& set) {
  for (const auto& [holder, held] : stripe.held) {
    if (holder != txn && Conflicts(set, held)) return true;
  }
  // Yield to earlier conflicting waiters so grants follow transaction-id
  // (= commit LSN) order within the stripe instead of racing on wakeup.
  for (const auto& [waiter, pending] : stripe.waiting) {
    if (waiter < txn && Conflicts(set, *pending)) return true;
  }
  return false;
}

LockManager::AcquireResult LockManager::Acquire(uint64_t txn,
                                                const LockSet& set) {
  AcquireResult result;
  const std::vector<uint32_t> stripes = StripesOf(set);
  // Ascending stripe order: holding stripe s we only ever wait on stripes
  // greater than s, so the cross-stripe wait graph is acyclic.
  for (const uint32_t si : stripes) {
    Stripe& stripe = *stripes_[si];
    std::unique_lock<std::mutex> lock(stripe.mu);
    if (BlockedInStripe(stripe, txn, set)) {
      result.blocked = true;
      ++stripe.blocked_acquires;
      stripe.waiting.emplace(txn, &set);
      const auto t0 = std::chrono::steady_clock::now();
      stripe.cv.wait(lock,
                     [&] { return !BlockedInStripe(stripe, txn, set); });
      const auto t1 = std::chrono::steady_clock::now();
      const double waited =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      result.wall_wait_ms += waited;
      stripe.wall_wait_ms += waited;
      stripe.waiting.erase(txn);
      // Removing a waiter can unblock a later waiter that was only
      // yielding to this one, so wake the others to re-evaluate.
      stripe.cv.notify_all();
    }
    LockSet& held = stripe.held[txn];
    held.insert(held.end(), set.begin(), set.end());
  }
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    ++acquires_;
    stripe_visits_ += stripes.size();
    TxnEntry& entry = txns_[txn];
    entry.held_requests += set.size();
    for (const uint32_t si : stripes) {
      if (!std::binary_search(entry.stripes.begin(), entry.stripes.end(),
                              si)) {
        entry.stripes.insert(std::upper_bound(entry.stripes.begin(),
                                              entry.stripes.end(), si),
                             si);
      }
    }
  }
  return result;
}

bool LockManager::TryAcquire(uint64_t txn, const LockSet& set) {
  const std::vector<uint32_t> stripes = StripesOf(set);
  size_t granted = 0;
  for (const uint32_t si : stripes) {
    Stripe& stripe = *stripes_[si];
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (BlockedInStripe(stripe, txn, set)) break;
    LockSet& held = stripe.held[txn];
    held.insert(held.end(), set.begin(), set.end());
    ++granted;
  }
  if (granted < stripes.size()) {
    // Roll back the prefix so a failed try leaves no residue.
    for (size_t i = 0; i < granted; ++i) {
      Stripe& stripe = *stripes_[stripes[i]];
      std::lock_guard<std::mutex> lock(stripe.mu);
      auto it = stripe.held.find(txn);
      if (it == stripe.held.end()) continue;
      it->second.resize(it->second.size() - set.size());
      if (it->second.empty()) stripe.held.erase(it);
      stripe.cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(txns_mu_);
    ++acquires_;
    stripe_visits_ += granted;
    return false;
  }
  std::lock_guard<std::mutex> lock(txns_mu_);
  ++acquires_;
  stripe_visits_ += stripes.size();
  TxnEntry& entry = txns_[txn];
  entry.held_requests += set.size();
  for (const uint32_t si : stripes) {
    if (!std::binary_search(entry.stripes.begin(), entry.stripes.end(), si)) {
      entry.stripes.insert(
          std::upper_bound(entry.stripes.begin(), entry.stripes.end(), si),
          si);
    }
  }
  return true;
}

void LockManager::Release(uint64_t txn) {
  std::vector<uint32_t> stripes;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return;
    stripes = std::move(it->second.stripes);
    txns_.erase(it);
    ++releases_;
  }
  for (const uint32_t si : stripes) {
    Stripe& stripe = *stripes_[si];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.held.erase(txn);
    stripe.cv.notify_all();
  }
}

size_t LockManager::HeldCount(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(txns_mu_);
  auto it = txns_.find(txn);
  return it == txns_.end() ? 0 : it->second.held_requests;
}

LockManager::Stats LockManager::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    stats.acquires = acquires_;
    stats.releases = releases_;
    stats.stripe_visits = stripe_visits_;
  }
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stats.blocked_acquires += stripe->blocked_acquires;
    stats.wall_wait_ms += stripe->wall_wait_ms;
  }
  return stats;
}

}  // namespace viewmat::server
