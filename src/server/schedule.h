#ifndef VIEWMAT_SERVER_SCHEDULE_H_
#define VIEWMAT_SERVER_SCHEDULE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "db/transaction.h"
#include "server/lock_manager.h"
#include "sim/strategy_driver.h"

namespace viewmat::server {

/// Relation ids in every lock set: 0 = R/R1 (the updated relation),
/// 1 = R2 (read-only join side, model 2 only).
inline constexpr uint32_t kLockRelBase = 0;
inline constexpr uint32_t kLockRelR2 = 1;

enum class OpKind : uint8_t { kUpdate, kQuery };

/// One client operation in the global schedule. The sequence index is the
/// transaction id, the lock-grant priority, and the commit LSN order all at
/// once: the seeded sequencer fixes it before any thread runs, which is
/// what makes every downstream number worker-count-independent.
struct ScheduledOp {
  uint64_t seq = 0;
  uint32_t client = 0;
  OpKind kind = OpKind::kUpdate;

  /// Updates: the victim list in generation order as (base key, new v).
  /// Old values are *not* stored — they are re-derived from the shadow at
  /// execution (and at serial replay) so the same op description stays
  /// valid for whichever committed prefix precedes it.
  std::vector<std::pair<int64_t, double>> victims;
  /// Updates: the client aborts voluntarily after acquiring its locks —
  /// the lifecycle's begin/acquire/abort path, with undo via Abort().
  bool voluntary_abort = false;

  /// Queries: the range and the exact multiset the view must return given
  /// every earlier non-aborted update committed (true by construction in
  /// the sequence-ordered commit pipeline).
  int64_t lo = 0;
  int64_t hi = 0;
  sim::ViewMultiset expected;

  /// The two-phase lock set: writers take X point intervals on their net
  /// A/D keys; readers take S on (queried range ∩ the view's t-lock
  /// screening intervals), so a reader outside the screen never conflicts.
  LockSet locks;

  /// Filled by AnalyzeSchedule: sequence indices of earlier in-window ops
  /// of other clients whose lock sets conflict with this one.
  std::vector<uint32_t> conflict_preds;
  uint32_t conflicts_rw = 0;  ///< reader-writer conflict edges
  uint32_t conflicts_ww = 0;  ///< writer-writer conflict edges
};

/// How clients' key choices collide — the knob the scaling bench sweeps.
/// Profiles shape WHERE a client's updates and queries land; everything
/// else about the schedule (op mix, interleaving, RNG streams) is shared,
/// so profiles are comparable run-to-run at the same seed.
enum class ContentionProfile : uint8_t {
  /// Keys drawn uniformly over the whole relation — the historical default.
  /// This path reproduces the pre-profile RNG stream byte-for-byte, so
  /// existing seeds keep their exact schedules.
  kUniform,
  /// Each client confined to its own contiguous key partition: writer
  /// lock sets never overlap across clients, the embarrassingly-parallel
  /// best case for the striped lock table.
  kDisjoint,
  /// Every client hammers the same small key prefix (n/8): the worst case,
  /// where most ops contend for the same stripes.
  kHotRange,
};

const char* ContentionProfileName(ContentionProfile p);

struct ScheduleOptions {
  uint32_t clients = 4;
  uint32_t ops_per_client = 8;
  /// Probability an op is an update transaction (else a view query).
  double update_fraction = 0.5;
  /// Probability an update client aborts voluntarily after lock acquire.
  double abort_fraction = 0.125;
  uint64_t seed = 1;
  ContentionProfile contention = ContentionProfile::kUniform;
};

struct Schedule {
  ScheduleOptions options;
  std::vector<ScheduledOp> ops;
  uint64_t planned_updates = 0;
  uint64_t planned_aborts = 0;
  uint64_t planned_queries = 0;
};

/// Builds the deterministic global schedule for `driver`'s scenario: one
/// seeded stream per client (so a client's ops do not depend on the
/// interleaving), a seeded sequencer interleaving the active clients, and
/// per-query expected answers from a generation shadow advanced by every
/// non-aborted update in sequence order.
Schedule BuildSchedule(const ScheduleOptions& options,
                       sim::StrategyDriver* driver);

/// Reconstructs the update transaction for `op` against `rel`, deriving old
/// tuple values from `shadow` with fault_sweep's intra-transaction staging
/// rule (a key hit twice in one transaction sees its own earlier write).
db::Transaction BuildUpdateTxn(const sim::ShadowOracle& shadow,
                               const ScheduledOp& op, db::Relation* rel);

/// Advances `shadow` by the op's staged writes (call only on commit).
void AdvanceShadow(const ScheduledOp& op, sim::ShadowOracle* shadow);

/// Deterministic lock-conflict analysis: each op is tested against the
/// previous `clients - 1` ops of other clients (the closed-loop in-flight
/// window), filling conflict_preds/conflicts_rw/conflicts_ww. Returns the
/// total number of conflict edges.
uint64_t AnalyzeSchedule(Schedule* schedule);

/// FNV-1a digest of the driver's converged observable state: the visible
/// base multiset plus the full-range view answer. Two runs ended in the
/// same logical state iff their digests match (up to hashing).
StatusOr<uint64_t> StateDigest(sim::StrategyDriver* driver);

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_SCHEDULE_H_
