#ifndef VIEWMAT_SERVER_LOCK_MANAGER_H_
#define VIEWMAT_SERVER_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "db/predicate.h"

namespace viewmat::server {

/// Lock mode. Compatibility is the classical matrix restricted to two
/// modes — S/S compatible, S/X and X/X conflicting — but applied to
/// *intervals* of the B+-tree key space rather than to single objects:
/// two locks conflict only when their modes conflict AND their interval
/// sets intersect on the same relation's keyspace.
enum class LockMode : uint8_t {
  kShared,     ///< readers: view queries lock the queried range ∩ screen
  kExclusive,  ///< writers: update transactions lock their net A/D keys
};

const char* LockModeName(LockMode mode);

/// One interval lock request: a set of closed key intervals on one
/// relation's clustering key. Writers derive point intervals from their
/// net A/D sets; readers derive theirs from the paper's t-lock screening
/// predicate (Predicate::ImpliedRangeSet on the lock field) intersected
/// with the queried range — a reader outside the view's screening interval
/// can never conflict with it.
struct LockRequest {
  uint32_t relation_id = 0;
  LockMode mode = LockMode::kShared;
  db::IntervalSet keys;
};

/// A transaction's full lock set, acquired as one atomic unit.
using LockSet = std::vector<LockRequest>;

/// True iff `a` and `b` held by *different* transactions could not be
/// granted together: some pair of requests on the same relation has
/// conflicting modes and intersecting interval sets. Also used by the
/// schedule analyzer to count logical conflicts without running threads.
bool Conflicts(const LockSet& a, const LockSet& b);

/// Two-phase interval lock manager over the t-lock rule index's key space.
///
/// Growth phase = one Acquire(txn, set) call that atomically claims the
/// transaction's entire lock set; shrink phase = one Release(txn) at
/// commit/abort. Because a transaction never holds part of its set while
/// waiting for the rest, hold-and-wait is impossible and the manager is
/// deadlock-free by construction (no victim selection needed). Waiters are
/// granted in transaction-id order: a request must also yield to any
/// *waiting* conflicting request with a smaller id, so grants follow the
/// commit-LSN order the server's deterministic scheduler assigns — no
/// barging, no starvation.
///
/// Thread safety: fully thread-safe; every operation takes the manager
/// mutex. Blocking uses a condition variable signalled on every release.
class LockManager {
 public:
  struct AcquireResult {
    bool blocked = false;       ///< did the request ever wait?
    double wall_wait_ms = 0.0;  ///< physical (not model) time spent waiting
  };

  /// Monotone counters; wall_wait_ms is physical time and therefore only
  /// reportable in nondeterministic report sections.
  struct Stats {
    uint64_t acquires = 0;
    uint64_t blocked_acquires = 0;
    uint64_t releases = 0;
    double wall_wait_ms = 0.0;
  };

  /// Blocks until the whole set is grantable, then holds it for `txn`.
  /// Acquiring twice for the same transaction extends its held set.
  AcquireResult Acquire(uint64_t txn, const LockSet& set);

  /// Grants the set iff it is grantable right now (no waiting).
  bool TryAcquire(uint64_t txn, const LockSet& set);

  /// Releases everything `txn` holds (the 2PL shrink phase). No-op for an
  /// unknown transaction, so abort paths may release unconditionally.
  void Release(uint64_t txn);

  /// Locks currently held by `txn` (empty if none) — test introspection.
  size_t HeldCount(uint64_t txn) const;

  Stats stats() const;

 private:
  /// True iff `set` conflicts with a held or waiting entry that bars it.
  bool Blocked(uint64_t txn, const LockSet& set) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, LockSet> held_;
  std::map<uint64_t, const LockSet*> waiting_;
  Stats stats_;
};

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_LOCK_MANAGER_H_
