#ifndef VIEWMAT_SERVER_LOCK_MANAGER_H_
#define VIEWMAT_SERVER_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "db/predicate.h"

namespace viewmat::server {

/// Lock mode. Compatibility is the classical matrix restricted to two
/// modes — S/S compatible, S/X and X/X conflicting — but applied to
/// *intervals* of the B+-tree key space rather than to single objects:
/// two locks conflict only when their modes conflict AND their interval
/// sets intersect on the same relation's keyspace.
enum class LockMode : uint8_t {
  kShared,     ///< readers: view queries lock the queried range ∩ screen
  kExclusive,  ///< writers: update transactions lock their net A/D keys
};

const char* LockModeName(LockMode mode);

/// One interval lock request: a set of closed key intervals on one
/// relation's clustering key. Writers derive point intervals from their
/// net A/D sets; readers derive theirs from the paper's t-lock screening
/// predicate (Predicate::ImpliedRangeSet on the lock field) intersected
/// with the queried range — a reader outside the view's screening interval
/// can never conflict with it.
struct LockRequest {
  uint32_t relation_id = 0;
  LockMode mode = LockMode::kShared;
  db::IntervalSet keys;
};

/// A transaction's full lock set, acquired as one atomic unit.
using LockSet = std::vector<LockRequest>;

/// True iff `a` and `b` held by *different* transactions could not be
/// granted together: some pair of requests on the same relation has
/// conflicting modes and intersecting interval sets. Also used by the
/// schedule analyzer to count logical conflicts without running threads.
bool Conflicts(const LockSet& a, const LockSet& b);

/// Two-phase interval lock manager over the t-lock rule index's key space,
/// physically partitioned into stripes.
///
/// Striping: the key space of every relation is cut into fixed-size key
/// blocks (kKeysPerBlock) that map onto `stripes_per_relation` stripes by
/// block modulo; a request's stripe set is the union over its intervals.
/// Each stripe carries its own mutex, condition variable, and held/waiting
/// tables, so transactions whose interval sets cannot intersect — disjoint
/// key ranges, or different relations — acquire on disjoint mutexes and
/// never contend physically. Two intersecting interval sets always share a
/// key, hence a block, hence a stripe, so conflict detection loses nothing:
/// within a stripe the exact Conflicts() test decides (stripe co-residency
/// alone never blocks anyone).
///
/// Ordering and liveness: a transaction acquires its stripes in ascending
/// stripe order. A transaction that holds stripe s only ever waits on
/// stripes greater than s, so the stripe-wait graph has edges in one
/// direction only and deadlock across stripes is impossible; within a
/// stripe the classical argument from the unstriped manager still applies
/// (a blocked acquire only waits for earlier-id holders or waiters — the
/// no-barging rule grants in transaction-id = commit-LSN order per stripe).
///
/// Thread safety: fully thread-safe. A transaction's stripe membership is
/// tracked in a side table under its own mutex, touched once per acquire
/// and once per release.
class LockManager {
 public:
  /// One stripe per relation degenerates to the PR-6 unstriped manager;
  /// the default fans each relation over 8 stripes.
  explicit LockManager(uint32_t stripes_per_relation = kDefaultStripes);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  static constexpr uint32_t kDefaultStripes = 8;
  /// Consecutive keys sharing a stripe. Keeps a typical narrow interval on
  /// one stripe while spreading distinct hot ranges across stripes.
  static constexpr int64_t kKeysPerBlock = 8;
  /// Relation ids the stripe table is sized for (wraps beyond this).
  static constexpr uint32_t kMaxRelations = 4;

  struct AcquireResult {
    bool blocked = false;       ///< did the request ever wait?
    double wall_wait_ms = 0.0;  ///< physical (not model) time spent waiting
  };

  /// Monotone counters; wall_wait_ms is physical time and therefore only
  /// reportable in nondeterministic report sections.
  struct Stats {
    uint64_t acquires = 0;
    uint64_t blocked_acquires = 0;
    uint64_t releases = 0;
    double wall_wait_ms = 0.0;
    /// Stripes touched across all acquires (≥ acquires; equality means
    /// every lock set stayed on a single stripe).
    uint64_t stripe_visits = 0;
  };

  /// Blocks until the whole set is grantable, then holds it for `txn`.
  /// Stripes are claimed in ascending order; within each stripe the call
  /// waits until no conflicting holder or earlier-id conflicting waiter
  /// bars it. Acquiring twice for the same transaction extends its held
  /// set.
  AcquireResult Acquire(uint64_t txn, const LockSet& set);

  /// Grants the set iff every stripe is grantable right now (no waiting);
  /// otherwise rolls back any stripes already claimed and returns false.
  bool TryAcquire(uint64_t txn, const LockSet& set);

  /// Releases everything `txn` holds (the 2PL shrink phase). No-op for an
  /// unknown transaction, so abort paths may release unconditionally.
  void Release(uint64_t txn);

  /// Number of requests held by `txn` (0 if none) — test introspection.
  size_t HeldCount(uint64_t txn) const;

  /// Stripes `set` maps to, ascending — exposed for tests and the bench's
  /// stripe-distribution histogram.
  std::vector<uint32_t> StripesOf(const LockSet& set) const;

  uint32_t stripe_count() const {
    return static_cast<uint32_t>(stripes_.size());
  }

  Stats stats() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<uint64_t, LockSet> held;
    std::map<uint64_t, const LockSet*> waiting;
    uint64_t blocked_acquires = 0;
    double wall_wait_ms = 0.0;
  };

  /// Per-transaction bookkeeping so Release/HeldCount need no lock set.
  struct TxnEntry {
    std::vector<uint32_t> stripes;  ///< ascending, deduplicated
    size_t held_requests = 0;
  };

  /// True iff `set` conflicts with a held or waiting entry in `stripe`
  /// that bars it. Caller holds the stripe mutex.
  static bool BlockedInStripe(const Stripe& stripe, uint64_t txn,
                              const LockSet& set);

  uint32_t stripes_per_relation_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  mutable std::mutex txns_mu_;
  std::map<uint64_t, TxnEntry> txns_;
  uint64_t acquires_ = 0;
  uint64_t releases_ = 0;
  uint64_t stripe_visits_ = 0;
};

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_LOCK_MANAGER_H_
