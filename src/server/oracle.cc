#include "server/oracle.h"

#include <memory>

#include "common/logging.h"

namespace viewmat::server {

StatusOr<uint64_t> SerialReplayDigest(
    const ViewServer::Options& options, const Schedule& schedule,
    const std::vector<ViewServer::OpResult>& ops) {
  if (ops.size() != schedule.ops.size()) {
    return Status::InvalidArgument("op results do not match the schedule");
  }
  VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<sim::StrategyDriver> replay,
                           sim::StrategyDriver::Create(options.driver));
  sim::ShadowOracle shadow = sim::MakeShadow(*replay->scenario());
  uint64_t committed = 0;
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    if (ops[i].status != OpStatus::kCommitted) continue;
    const ScheduledOp& op = schedule.ops[i];
    db::Transaction txn = BuildUpdateTxn(shadow, op, replay->base());
    VIEWMAT_RETURN_IF_ERROR(replay->OnTransaction(txn));
    txn.MarkCommitted();
    AdvanceShadow(op, &shadow);
    ++committed;
  }
  VIEWMAT_RETURN_IF_ERROR(replay->Converge());

  // Golden triple: the replayed system's full view answer and visible base
  // must match the shadow oracle exactly — a digest collision between two
  // equally-wrong states cannot slip through.
  sim::ViewMultiset answered;
  VIEWMAT_RETURN_IF_ERROR(replay->Query(
      0, shadow.n - 1, [&](const db::Tuple& value, int64_t count) {
        answered[value] += count;
        return true;
      }));
  if (answered != sim::ExpectedRange(shadow, replay->model(), 0,
                                     shadow.n - 1)) {
    return Status::Internal(
        "serial replay view answer disagrees with the shadow oracle");
  }
  sim::ViewMultiset base;
  VIEWMAT_RETURN_IF_ERROR(replay->VisibleBase(&base));
  sim::ViewMultiset expected_base;
  for (int64_t key = 0; key < shadow.n; ++key) {
    expected_base[shadow.BaseTuple(key)] += 1;
  }
  if (base != expected_base) {
    return Status::Internal(
        "serial replay base contents disagree with the committed state");
  }
  (void)committed;
  return StateDigest(replay.get());
}

Status CheckSerializability(ViewServer::Options options,
                            const std::vector<size_t>& worker_counts,
                            std::string* detail) {
  if (worker_counts.empty()) {
    return Status::InvalidArgument("no worker counts to check");
  }

  bool have_reference = false;
  ViewServer::Result reference;
  const Schedule* schedule = nullptr;
  std::unique_ptr<ViewServer> reference_server;
  for (const size_t workers : worker_counts) {
    options.workers = workers;
    VIEWMAT_ASSIGN_OR_RETURN(std::unique_ptr<ViewServer> server,
                             ViewServer::Create(options));
    VIEWMAT_ASSIGN_OR_RETURN(ViewServer::Result result, server->Run());
    if (result.queries_stale != 0) {
      return Status::Internal(
          "stale query answer at workers=" + std::to_string(workers) +
          " — a reader saw a non-serializable state");
    }
    if (!have_reference) {
      have_reference = true;
      reference = result;
      reference_server = std::move(server);
      schedule = &reference_server->schedule();
      continue;
    }
    // Worker count must be invisible to every logical outcome.
    if (result.state_digest != reference.state_digest) {
      return Status::Internal(
          "state digest diverged at workers=" + std::to_string(workers));
    }
    if (result.committed != reference.committed ||
        result.aborted != reference.aborted ||
        result.rejected != reference.rejected ||
        result.skipped != reference.skipped) {
      return Status::Internal(
          "transaction outcomes diverged at workers=" +
          std::to_string(workers));
    }
    for (size_t i = 0; i < result.ops.size(); ++i) {
      if (result.ops[i].status != reference.ops[i].status ||
          !(result.ops[i].cost == reference.ops[i].cost)) {
        return Status::Internal("op " + std::to_string(i) +
                                " diverged at workers=" +
                                std::to_string(workers));
      }
    }
  }

  VIEWMAT_ASSIGN_OR_RETURN(const uint64_t serial_digest,
                           SerialReplayDigest(options, *schedule,
                                              reference.ops));
  if (serial_digest != reference.state_digest) {
    return Status::Internal(
        "concurrent final state does not equal the serial order of its "
        "committed transactions");
  }
  if (detail != nullptr) {
    *detail += "serializable: " + std::to_string(reference.committed) +
               " committed, " + std::to_string(reference.aborted) +
               " aborted, " + std::to_string(reference.logical_conflicts) +
               " conflicts, digest " +
               std::to_string(reference.state_digest) + "\n";
  }
  return Status::OK();
}

}  // namespace viewmat::server
