#ifndef VIEWMAT_SERVER_ORACLE_H_
#define VIEWMAT_SERVER_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/view_server.h"

namespace viewmat::server {

/// Serializability oracle.
///
/// A concurrent schedule is accepted iff its final base+view state equals
/// the state produced by *some* serial order of its committed transactions.
/// The server's commit pipeline makes that order explicit (commit LSN =
/// schedule sequence), so the oracle exhibits the witness directly: it
/// replays exactly the committed ops, in sequence order, through a fresh
/// serial StrategyDriver, and demands state-digest equality — plus the
/// golden triple from the torture harness (the replayed view must match
/// the shadow oracle's expected multiset and the base must hold exactly
/// the committed values), so a digest collision cannot mask corruption.

/// Replays the committed updates of a finished run serially and returns
/// the digest of the converged replay state. Errors if any replayed
/// transaction fails or the replay state disagrees with the shadow oracle.
StatusOr<uint64_t> SerialReplayDigest(
    const ViewServer::Options& options, const Schedule& schedule,
    const std::vector<ViewServer::OpResult>& ops);

/// Runs the full check: executes the schedule at every worker count in
/// `worker_counts`, requires identical per-op outcomes and state digests
/// across counts, zero stale queries, and serial-replay equality. On
/// success appends a one-line summary to `detail` (may be null).
Status CheckSerializability(ViewServer::Options options,
                            const std::vector<size_t>& worker_counts,
                            std::string* detail);

}  // namespace viewmat::server

#endif  // VIEWMAT_SERVER_ORACLE_H_
