#ifndef VIEWMAT_WORKLOAD_WORKLOAD_H_
#define VIEWMAT_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "costmodel/params.h"
#include "db/catalog.h"
#include "db/predicate.h"
#include "db/relation.h"
#include "db/transaction.h"

namespace viewmat::workload {

/// Builds the paper's database shapes and operation mix from a cost-model
/// parameter set, so the simulator exercises exactly the scenario the
/// formulas describe:
///
///  - R / R1: N tuples of S bytes — (k1, k2, v, pad) where k1 is the unique
///    clustering key 0..N-1 (the view-predicate field), k2 joins to R2, v is
///    the updated/aggregated payload.
///  - R2 (Model 2): f_R2*N tuples (key, w, pad2) clustered-hashed on key;
///    R1.k2 is uniform over R2 keys so every restricted R1 tuple joins
///    exactly one R2 tuple.
///  - View predicate: k1 < f*N (selectivity f, a single t-lockable range).
///  - Update transactions: l random victims get a fresh v (keys unchanged).
///  - Queries: a random view-key range spanning a fraction f_v of the view
///    (Models 1 and 2); a state read (Model 3).
///
/// An in-memory oracle mirrors v per key so update transactions can name
/// old tuple values without touching the measured database, and so tests
/// can verify query answers independently.
class Scenario {
 public:
  /// Field indices in R/R1's schema.
  static constexpr size_t kFieldK1 = 0;
  static constexpr size_t kFieldK2 = 1;
  static constexpr size_t kFieldV = 2;
  static constexpr size_t kFieldPad = 3;

  Scenario(const costmodel::Params& params, uint64_t seed);

  /// The schema of R / R1 sized so records are exactly S bytes.
  db::Schema BaseSchema() const;
  /// The schema of R2 (also S bytes).
  db::Schema R2Schema() const;

  /// Creates and loads R/R1 into the catalog with the given access method.
  StatusOr<db::Relation*> LoadBase(db::Catalog* catalog,
                                   const std::string& name,
                                   db::AccessMethod method);
  /// Creates and loads R2 (clustered hash on its key).
  StatusOr<db::Relation*> LoadR2(db::Catalog* catalog,
                                 const std::string& name);

  /// The view predicate k1 < f*N over the base schema.
  db::PredicateRef ViewPredicate() const;

  /// Number of base tuples satisfying the predicate (= |view|).
  int64_t ViewTupleCount() const { return f_cut_; }

  /// The current tuple for a key, per the oracle.
  db::Tuple BaseTuple(int64_t key) const;
  db::Tuple R2Tuple(int64_t key) const;

  /// One update transaction: l random victims, each getting a fresh v.
  /// Mutates the oracle so subsequent transactions see the new values.
  db::Transaction NextUpdateTransaction(db::Relation* rel);

  /// A random query range covering a fraction f_v of the view's keyspace.
  struct QueryRange {
    int64_t lo;
    int64_t hi;
  };
  QueryRange NextQueryRange();

  /// The deterministic interleaving of k update transactions and q queries
  /// (spread evenly, matching the model's averages).
  enum class OpKind { kUpdate, kQuery };
  std::vector<OpKind> OpSequence() const;

  const costmodel::Params& params() const { return params_; }
  int64_t n() const { return n_; }
  int64_t r2_count() const { return r2_count_; }

 private:
  costmodel::Params params_;
  Random rng_;
  int64_t n_;        ///< tuples in R/R1
  int64_t r2_count_; ///< tuples in R2
  int64_t f_cut_;    ///< predicate boundary: keys < f_cut_ are in the view
  uint32_t pad_width_;
  std::vector<int64_t> k2_by_key_;  ///< R1.k2 oracle
  std::vector<double> v_by_key_;    ///< R1.v oracle
  std::vector<double> w_by_key_;    ///< R2.w oracle
};

}  // namespace viewmat::workload

#endif  // VIEWMAT_WORKLOAD_WORKLOAD_H_
