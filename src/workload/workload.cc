#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace viewmat::workload {

namespace {
constexpr uint32_t kFixedFieldBytes = 24;  // k1 + k2 + v
const char* kPad = "x";
}  // namespace

Scenario::Scenario(const costmodel::Params& params, uint64_t seed)
    : params_(params), rng_(seed) {
  VIEWMAT_CHECK(params_.Validate().ok());
  VIEWMAT_CHECK_MSG(params_.S >= kFixedFieldBytes + 1,
                    "S must fit the three fixed fields plus padding");
  n_ = static_cast<int64_t>(std::llround(params_.N));
  r2_count_ = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(params_.f_R2 * params_.N)));
  f_cut_ = static_cast<int64_t>(std::llround(params_.f * params_.N));
  pad_width_ = static_cast<uint32_t>(params_.S) - kFixedFieldBytes;

  k2_by_key_.resize(n_);
  v_by_key_.resize(n_);
  for (int64_t i = 0; i < n_; ++i) {
    k2_by_key_[i] = static_cast<int64_t>(rng_.Uniform(r2_count_));
    v_by_key_[i] = rng_.NextDouble() * 1000.0;
  }
  w_by_key_.resize(r2_count_);
  for (int64_t i = 0; i < r2_count_; ++i) {
    w_by_key_[i] = rng_.NextDouble() * 1000.0;
  }
}

db::Schema Scenario::BaseSchema() const {
  return db::Schema({db::Field::Int64("k1"), db::Field::Int64("k2"),
                     db::Field::Double("v"),
                     db::Field::String("pad", pad_width_)});
}

db::Schema Scenario::R2Schema() const {
  return db::Schema({db::Field::Int64("key"), db::Field::Double("w"),
                     db::Field::String("pad2", pad_width_ + 8)});
}

db::Tuple Scenario::BaseTuple(int64_t key) const {
  VIEWMAT_CHECK(key >= 0 && key < n_);
  return db::Tuple({db::Value(key), db::Value(k2_by_key_[key]),
                    db::Value(v_by_key_[key]), db::Value(std::string(kPad))});
}

db::Tuple Scenario::R2Tuple(int64_t key) const {
  VIEWMAT_CHECK(key >= 0 && key < r2_count_);
  return db::Tuple(
      {db::Value(key), db::Value(w_by_key_[key]), db::Value(std::string(kPad))});
}

StatusOr<db::Relation*> Scenario::LoadBase(db::Catalog* catalog,
                                           const std::string& name,
                                           db::AccessMethod method) {
  db::Relation::Options options;
  options.expected_tuples = static_cast<size_t>(n_);
  VIEWMAT_ASSIGN_OR_RETURN(
      db::Relation * rel,
      catalog->CreateRelation(name, BaseSchema(), method, kFieldK1, options));
  if (method == db::AccessMethod::kHeap) {
    // A heap stands in for a relation clustered on some *other* attribute
    // (the unclustered-scan scenario): load in shuffled physical order so
    // key ranges are scattered across pages, as TOTAL_unclustered assumes.
    std::vector<int64_t> order(n_);
    for (int64_t i = 0; i < n_; ++i) order[i] = i;
    Random shuffle_rng(0xfeedface);
    for (int64_t i = n_ - 1; i > 0; --i) {
      std::swap(order[i], order[shuffle_rng.Uniform(i + 1)]);
    }
    for (const int64_t key : order) {
      VIEWMAT_RETURN_IF_ERROR(rel->Insert(BaseTuple(key)));
    }
  } else if (method == db::AccessMethod::kClusteredBTree) {
    // Keys arrive sorted: bulk-load into completely packed pages, the
    // layout the cost model's b = N*S/B assumes.
    int64_t next = 0;
    VIEWMAT_RETURN_IF_ERROR(rel->BulkLoadSorted([&](db::Tuple* t) {
      if (next >= n_) return false;
      *t = BaseTuple(next++);
      return true;
    }));
  } else {
    for (int64_t key = 0; key < n_; ++key) {
      VIEWMAT_RETURN_IF_ERROR(rel->Insert(BaseTuple(key)));
    }
  }
  return rel;
}

StatusOr<db::Relation*> Scenario::LoadR2(db::Catalog* catalog,
                                         const std::string& name) {
  db::Relation::Options options;
  options.expected_tuples = static_cast<size_t>(r2_count_);
  VIEWMAT_ASSIGN_OR_RETURN(
      db::Relation * rel,
      catalog->CreateRelation(name, R2Schema(),
                              db::AccessMethod::kClusteredHash, 0, options));
  for (int64_t key = 0; key < r2_count_; ++key) {
    VIEWMAT_RETURN_IF_ERROR(rel->Insert(R2Tuple(key)));
  }
  return rel;
}

db::PredicateRef Scenario::ViewPredicate() const {
  return db::Predicate::Compare(kFieldK1, db::CompareOp::kLt,
                                db::Value(f_cut_));
}

db::Transaction Scenario::NextUpdateTransaction(db::Relation* rel) {
  db::Transaction txn;
  const int64_t l = static_cast<int64_t>(std::llround(params_.l));
  for (int64_t i = 0; i < l; ++i) {
    const int64_t key = static_cast<int64_t>(rng_.Uniform(n_));
    const db::Tuple old_t = BaseTuple(key);
    v_by_key_[key] = rng_.NextDouble() * 1000.0;
    const db::Tuple new_t = BaseTuple(key);
    txn.Update(rel, old_t, new_t);
  }
  return txn;
}

Scenario::QueryRange Scenario::NextQueryRange() {
  const int64_t view_keys = std::max<int64_t>(f_cut_, 1);
  int64_t span = static_cast<int64_t>(std::llround(params_.f_v * view_keys));
  span = std::clamp<int64_t>(span, 1, view_keys);
  const int64_t max_lo = view_keys - span;
  const int64_t lo =
      max_lo > 0 ? static_cast<int64_t>(rng_.Uniform(max_lo + 1)) : 0;
  return QueryRange{lo, lo + span - 1};
}

std::vector<Scenario::OpKind> Scenario::OpSequence() const {
  // Spread k updates evenly among q queries: before each query run
  // floor/ceil(k/q) transactions so every query sees ~u updated tuples —
  // the steady state the cost model averages over.
  const int64_t k = static_cast<int64_t>(std::llround(params_.k));
  const int64_t q = static_cast<int64_t>(std::llround(params_.q));
  std::vector<OpKind> ops;
  ops.reserve(static_cast<size_t>(k + q));
  int64_t updates_emitted = 0;
  for (int64_t i = 1; i <= q; ++i) {
    const int64_t target = (k * i) / q;
    for (; updates_emitted < target; ++updates_emitted) {
      ops.push_back(OpKind::kUpdate);
    }
    ops.push_back(OpKind::kQuery);
  }
  for (; updates_emitted < k; ++updates_emitted) {
    ops.push_back(OpKind::kUpdate);
  }
  return ops;
}

}  // namespace viewmat::workload
