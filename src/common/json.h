#ifndef VIEWMAT_COMMON_JSON_H_
#define VIEWMAT_COMMON_JSON_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace viewmat::common {

/// Minimal dependency-free streaming JSON writer. Handles comma placement
/// and string escaping; the caller is responsible for well-formed nesting
/// (every BeginX matched by EndX, every object value preceded by a Key).
/// Output is deterministic — the bench reports diff cleanly across runs.
class JsonWriter {
 public:
  JsonWriter() { stack_.push_back({Ctx::kTop, false}); }

  void BeginObject() {
    BeforeValue();
    out_ += '{';
    stack_.push_back({Ctx::kObject, false});
  }
  void EndObject() {
    stack_.pop_back();
    out_ += '}';
  }
  void BeginArray() {
    BeforeValue();
    out_ += '[';
    stack_.push_back({Ctx::kArray, false});
  }
  void EndArray() {
    stack_.pop_back();
    out_ += ']';
  }

  void Key(std::string_view k) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
    AppendEscaped(k);
    out_ += ':';
    key_pending_ = true;
  }

  void String(std::string_view v) {
    BeforeValue();
    AppendEscaped(v);
  }
  void Bool(bool v) {
    BeforeValue();
    out_ += v ? "true" : "false";
  }
  void Null() {
    BeforeValue();
    out_ += "null";
  }
  void Int(int64_t v) {
    BeforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
  }
  void Uint(uint64_t v) {
    BeforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void Double(double v) {
    BeforeValue();
    if (!std::isfinite(v)) {  // JSON has no NaN/Inf
      out_ += "null";
      return;
    }
    char buf[40];
    // Integral values print exactly; everything else uses general format
    // with 12 significant digits, which round-trips every quantity the
    // cost model produces and keeps the reports readable and byte-stable.
    // std::to_chars (not printf) because formatting must ignore the
    // process locale: a comma-decimal locale would otherwise emit "1,5"
    // and corrupt the document.
    std::to_chars_result r{};
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
      r = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 0);
    } else {
      r = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general,
                        12);
    }
    out_.append(buf, r.ptr);
  }

  /// Appends `json` verbatim as the next value. The caller guarantees it
  /// is a well-formed JSON value (e.g. the output of another writer).
  void RawValue(std::string_view json) {
    BeforeValue();
    out_ += json;
  }

  // Common key/value shorthands.
  void KV(std::string_view k, std::string_view v) { Key(k); String(v); }
  void KV(std::string_view k, const char* v) { Key(k); String(v); }
  void KV(std::string_view k, double v) { Key(k); Double(v); }
  void KV(std::string_view k, int64_t v) { Key(k); Int(v); }
  void KV(std::string_view k, uint64_t v) { Key(k); Uint(v); }
  void KV(std::string_view k, int v) { Key(k); Int(v); }
  void KV(std::string_view k, bool v) { Key(k); Bool(v); }

  const std::string& str() const { return out_; }

 private:
  enum class Ctx : uint8_t { kTop, kObject, kArray };
  struct Level {
    Ctx ctx;
    bool has_items;
  };

  void BeforeValue() {
    if (key_pending_) {
      key_pending_ = false;
      return;  // comma already handled by Key()
    }
    if (stack_.back().ctx == Ctx::kArray && stack_.back().has_items) {
      out_ += ',';
    }
    stack_.back().has_items = true;
  }

  void AppendEscaped(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
};

/// Parsed JSON document node. Object member order is preserved so tests and
/// the schema checker can report stable diagnostics.
struct JsonValue {
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Returns the member value or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace json_internal {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos) + ": " + what);
  }

  Status ParseHex4(unsigned* out) {
    if (pos + 4 > text.size()) return Err("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text[pos++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= h - '0';
      else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
      else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
      else return Err("bad \\u escape");
    }
    *out = code;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Eat('"')) return Err("expected string");
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            VIEWMAT_RETURN_IF_ERROR(ParseHex4(&code));
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Err("lone low surrogate");
            }
            uint32_t cp = code;
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: only valid as the first half of a
              // \uD8xx\uDCxx pair encoding a supplementary-plane
              // character. Anything else is malformed input, not a code
              // point to pass through.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return Err("lone high surrogate");
              }
              pos += 2;
              unsigned low = 0;
              VIEWMAT_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Err("invalid surrogate pair");
              }
              cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // Encode the code point as UTF-8 (the writer only emits \u
            // for control characters, but parsed input may use any).
            if (cp < 0x80) {
              *out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              *out += static_cast<char>(0xC0 | (cp >> 6));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            } else if (cp < 0x10000) {
              *out += static_cast<char>(0xE0 | (cp >> 12));
              *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              *out += static_cast<char>(0xF0 | (cp >> 18));
              *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Err("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 64) return Err("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Err("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (Eat('}')) return Status::OK();
      while (true) {
        std::string key;
        VIEWMAT_RETURN_IF_ERROR(ParseString(&key));
        if (!Eat(':')) return Err("expected ':'");
        JsonValue v;
        VIEWMAT_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
        out->members.emplace_back(std::move(key), std::move(v));
        if (Eat(',')) {
          SkipWs();
          continue;
        }
        if (Eat('}')) return Status::OK();
        return Err("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (Eat(']')) return Status::OK();
      while (true) {
        JsonValue v;
        VIEWMAT_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
        out->items.push_back(std::move(v));
        if (Eat(',')) continue;
        if (Eat(']')) return Status::OK();
        return Err("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos += 4;
      return Status::OK();
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos += 5;
      return Status::OK();
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos += 4;
      return Status::OK();
    }
    // Number.
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return Err("unexpected character");
    out->type = JsonValue::Type::kNumber;
    // std::from_chars is locale-independent, unlike strtod: under a
    // comma-decimal locale strtod would stop at the '.' and silently
    // truncate "1.5" to 1. from_chars rejects a leading '+' that the
    // lenient scan above allows, so skip it explicitly.
    std::string_view num = text.substr(start, pos - start);
    if (!num.empty() && num.front() == '+') num.remove_prefix(1);
    const std::from_chars_result r =
        std::from_chars(num.data(), num.data() + num.size(), out->number);
    if (r.ec != std::errc()) return Err("bad number");
    return Status::OK();
  }
};

}  // namespace json_internal

/// Parses a complete JSON document; trailing non-whitespace is an error.
inline StatusOr<JsonValue> ParseJson(std::string_view text) {
  json_internal::Parser parser{text};
  JsonValue root;
  VIEWMAT_RETURN_IF_ERROR(parser.ParseValue(&root, 0));
  parser.SkipWs();
  if (parser.pos != text.size()) {
    return parser.Err("trailing characters after document");
  }
  return root;
}

}  // namespace viewmat::common

#endif  // VIEWMAT_COMMON_JSON_H_
