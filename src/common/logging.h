#ifndef VIEWMAT_COMMON_LOGGING_H_
#define VIEWMAT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace viewmat {

/// Aborts with a message when an internal invariant is violated. These are
/// programming errors, not recoverable conditions, so they terminate in all
/// build modes (the storage engine's correctness depends on them).
#define VIEWMAT_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#define VIEWMAT_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Debug-only check, compiled out in NDEBUG builds. Use on hot paths.
/// The NDEBUG form still *parses* the condition (inside an unevaluated,
/// dead branch), so a DCHECK referencing a renamed member breaks the
/// release build instead of rotting silently; the optimizer removes it.
#ifdef NDEBUG
#define VIEWMAT_DCHECK(cond)     \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (0)
#else
#define VIEWMAT_DCHECK(cond) VIEWMAT_CHECK(cond)
#endif

}  // namespace viewmat

#endif  // VIEWMAT_COMMON_LOGGING_H_
