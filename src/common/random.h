#ifndef VIEWMAT_COMMON_RANDOM_H_
#define VIEWMAT_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace viewmat {

/// Deterministic PRNG (xorshift128+) used by workload generation, hashing
/// salt selection and tests. Deterministic seeding keeps every experiment
/// reproducible run to run, which matters because EXPERIMENTS.md records
/// concrete numbers.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into two nonzero state words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform real in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace viewmat

#endif  // VIEWMAT_COMMON_RANDOM_H_
