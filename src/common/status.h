#ifndef VIEWMAT_COMMON_STATUS_H_
#define VIEWMAT_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace viewmat {

/// Error categories used across the library. The project does not use C++
/// exceptions; fallible operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

/// Lightweight status type: a code plus an optional message. Cheap to copy
/// in the OK case (empty message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" — for logs and test failure output.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Mirrors absl::StatusOr in
/// spirit; accessing the value of a non-OK result is a programming error
/// and aborts with the carried status in every build type — silently
/// handing back a moved-from variant in release builds would turn a missed
/// error check into data corruption.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error status, so call sites can
  /// `return value;` or `return Status::NotFound(...)`.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(rep_);
  }
  T& value() & {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(rep_);
  }
  T&& value() && {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  [[noreturn]] void DieOnBadAccess() const {
    std::fprintf(stderr, "StatusOr::value() on non-OK status: %s\n",
                 std::get<Status>(rep_).ToString().c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define VIEWMAT_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::viewmat::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define VIEWMAT_ASSIGN_OR_RETURN(lhs, expr)       \
  VIEWMAT_ASSIGN_OR_RETURN_IMPL(                  \
      VIEWMAT_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)
#define VIEWMAT_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()
#define VIEWMAT_STATUS_CONCAT_IMPL(a, b) a##b
#define VIEWMAT_STATUS_CONCAT(a, b) VIEWMAT_STATUS_CONCAT_IMPL(a, b)

}  // namespace viewmat

#endif  // VIEWMAT_COMMON_STATUS_H_
