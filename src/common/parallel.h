#ifndef VIEWMAT_COMMON_PARALLEL_H_
#define VIEWMAT_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace viewmat::common {

/// Default worker count for `--jobs 0` / unspecified: the hardware thread
/// count, or 1 when the runtime cannot report it.
inline size_t DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// A small fixed-size thread pool. Workers are spawned once in the
/// constructor and joined in the destructor; Submit enqueues a task,
/// Wait blocks until every submitted task has finished.
///
/// The pool makes no ordering or placement promises — determinism is the
/// caller's job, and the sweep runners get it by deriving all randomness
/// from the task *index* and collecting results *by index* (see
/// ParallelMap), so output is bit-identical at any worker count.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    task_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
      ++pending_;
    }
    task_cv_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stop_ set and queue drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> tasks_;
  size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Invokes fn(i) for every i in [0, n), spread over up to `jobs` worker
/// threads (`jobs` 0 = DefaultJobs()). jobs <= 1 or n <= 1 runs inline on
/// the calling thread — the serial path involves no thread machinery at
/// all, so `--jobs 1` is exactly the old single-threaded execution.
///
/// Work is handed out dynamically in chunks of `grain` consecutive indices
/// per atomic claim. grain 1 (the default of the two-callback overload) is
/// the historical index-at-a-time behavior; a larger grain amortizes the
/// claim over cheap iterations and gives each worker cache-friendly runs of
/// adjacent indices. The grain never changes WHAT runs — each index is
/// executed exactly once and tasks must not depend on execution order — so
/// results collected by index are bit-identical at any (jobs, grain).
/// The first exception thrown by a task is rethrown on the calling thread
/// after all workers have drained (the remainder of a faulting chunk is
/// abandoned along with all unclaimed chunks).
inline void ParallelFor(size_t jobs, size_t n, size_t grain,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 0) jobs = DefaultJobs();
  if (grain == 0) grain = 1;
  const size_t threads = jobs < n ? jobs : n;
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr error;
  {
    ThreadPool pool(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.Submit([&] {
        for (;;) {
          const size_t start = next.fetch_add(grain, std::memory_order_relaxed);
          if (start >= n || cancelled.load(std::memory_order_relaxed)) return;
          const size_t end = std::min(n, start + grain);
          for (size_t i = start; i < end; ++i) {
            if (cancelled.load(std::memory_order_relaxed)) return;
            try {
              fn(i);
            } catch (...) {
              {
                std::lock_guard<std::mutex> lock(error_mu);
                if (error == nullptr) error = std::current_exception();
              }
              cancelled.store(true, std::memory_order_relaxed);
              return;
            }
          }
        }
      });
    }
    pool.Wait();
  }
  if (error != nullptr) std::rethrow_exception(error);
}

inline void ParallelFor(size_t jobs, size_t n,
                        const std::function<void(size_t)>& fn) {
  ParallelFor(jobs, n, /*grain=*/1, fn);
}

/// results[i] = fn(i) for i in [0, n), computed on up to `jobs` threads and
/// collected in index order — the output is identical at any job count.
/// R needs to be movable, not default-constructible.
template <typename Fn>
auto ParallelMap(size_t jobs, size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(size_t{0}))>> {
  using R = std::decay_t<decltype(fn(size_t{0}))>;
  std::vector<std::optional<R>> slots(n);
  ParallelFor(jobs, n, [&](size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace viewmat::common

#endif  // VIEWMAT_COMMON_PARALLEL_H_
