#ifndef VIEWMAT_COSTMODEL_CROSSOVER_H_
#define VIEWMAT_COSTMODEL_CROSSOVER_H_

#include <functional>
#include <optional>

#include "costmodel/params.h"

namespace viewmat::costmodel {

/// Cost-difference function g(P) = cost_a(P) - cost_b(P) evaluated at the
/// parameter point base.WithUpdateProbability(P).
using CostAtP = std::function<double(const Params&)>;

/// Finds the update probability P in [lo, hi] at which two strategies have
/// equal cost, by bisection on their cost difference. Returns nullopt when
/// the difference does not change sign over the interval (one strategy
/// dominates throughout). Both cost functions must be continuous in P,
/// which every formula in the paper is.
std::optional<double> EqualCostP(const CostAtP& cost_a, const CostAtP& cost_b,
                                 const Params& base, double lo = 0.0,
                                 double hi = 0.999, double tol = 1e-9);

/// Figure 9 helper: for a given l (tuples per transaction), the P at which
/// immediate aggregate maintenance equals from-scratch recomputation
/// (Model 3). Above the returned P, recomputation is cheaper; below it,
/// immediate maintenance wins. Returns nullopt when immediate wins for all
/// P < hi (the curve is above the plotted range — common for large f).
std::optional<double> Model3EqualCostP(const Params& base, double l,
                                       double hi = 0.9999999);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_CROSSOVER_H_
