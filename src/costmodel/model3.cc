#include "costmodel/model3.h"

#include <cmath>

#include "costmodel/model1.h"

namespace viewmat::costmodel {

double CQuery3(const Params& p) { return p.C2; }

double CDefRefresh3(const Params& p) {
  return p.C2 * (1.0 - std::pow(1.0 - p.f, 2.0 * p.u()));
}

double CImmRefresh3(const Params& p) {
  return (p.k / p.q) * p.C2 * (1.0 - std::pow(1.0 - p.f, 2.0 * p.l));
}

double TotalDeferred3(const Params& p) {
  return CAd(p) + CAdRead(p) + CQuery3(p) + CDefRefresh3(p) + CScreen(p);
}

double TotalImmediate3(const Params& p) {
  return CQuery3(p) + CImmRefresh3(p) + CScreen(p);
}

double TotalRecompute3(const Params& p) {
  Params scan = p;
  scan.f_v = p.aggregate_scan_fraction;
  return TotalClustered(scan);
}

StatusOr<double> Model3Cost(Strategy s, const Params& p) {
  switch (s) {
    case Strategy::kDeferred:
      return TotalDeferred3(p);
    case Strategy::kImmediate:
      return TotalImmediate3(p);
    case Strategy::kQmRecompute:
      return TotalRecompute3(p);
    case Strategy::kQmClustered:
    case Strategy::kQmUnclustered:
    case Strategy::kQmSequential:
    case Strategy::kQmLoopJoin:
      return Status::InvalidArgument("strategy not defined for Model 3");
  }
  return Status::Internal("unreachable");
}

}  // namespace viewmat::costmodel
