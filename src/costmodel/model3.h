#ifndef VIEWMAT_COSTMODEL_MODEL3_H_
#define VIEWMAT_COSTMODEL_MODEL3_H_

#include "common/status.h"
#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::costmodel {

/// Model 3 (§3.6): the view is an incrementally maintainable aggregate
/// (sum, count, average, ...) over a Model-1-style selection with
/// selectivity f. Only the aggregate state is stored — it fits in a single
/// disk block — so a query is one page read and a refresh is at most one
/// page write.

/// C_query3 = C2: read the block holding the aggregate state.
double CQuery3(const Params& p);

/// Deferred refresh per query: one write times the probability that at
/// least one of the 2u tuples changed since the last query lies in the
/// aggregated set: C2 * (1 - (1-f)^(2u)). No read is charged — the state
/// block is already being read to answer the query.
double CDefRefresh3(const Params& p);

/// Immediate refresh per query: one write per transaction that touches the
/// aggregated set, C2 * (1 - (1-f)^(2l)), scaled by k/q transactions per
/// query.
double CImmRefresh3(const Params& p);

/// TOTAL_deferred-3 = C_AD + C_ADread + C_query3 + C_def-refresh3 + C_screen.
double TotalDeferred3(const Params& p);

/// TOTAL_immediate-3 = C_query3 + C_imm-refresh3 + C_screen. (The paper
/// includes no C_overhead term for Model 3.)
double TotalImmediate3(const Params& p);

/// Recomputing the aggregate from scratch with a clustered index scan.
/// The paper reuses TOTAL_clustered; an aggregate reads its entire f*N
/// input, so the scan fraction defaults to 1 (Params::aggregate_scan_fraction).
double TotalRecompute3(const Params& p);

/// Dispatch by strategy; only the three §3.7 contenders are valid.
StatusOr<double> Model3Cost(Strategy s, const Params& p);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_MODEL3_H_
