#include "costmodel/regions.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/parallel.h"
#include "costmodel/model1.h"
#include "costmodel/model2.h"
#include "costmodel/model3.h"

namespace viewmat::costmodel {

const std::vector<Strategy>& ModelCandidates(int model) {
  static const std::vector<Strategy> kModel1 = {
      Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmClustered,
      Strategy::kQmUnclustered, Strategy::kQmSequential};
  static const std::vector<Strategy> kModel2 = {
      Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmLoopJoin};
  static const std::vector<Strategy> kModel3 = {
      Strategy::kDeferred, Strategy::kImmediate, Strategy::kQmRecompute};
  switch (model) {
    case 1: return kModel1;
    case 2: return kModel2;
    case 3: return kModel3;
  }
  VIEWMAT_CHECK(false && "model must be 1, 2, or 3");
  return kModel1;
}

CostFn ModelCostFn(int model) {
  VIEWMAT_CHECK(model >= 1 && model <= 3);
  return [model](Strategy s, const Params& p) -> double {
    StatusOr<double> cost = [&]() -> StatusOr<double> {
      switch (model) {
        case 1: return Model1Cost(s, p);
        case 2: return Model2Cost(s, p);
        default: return Model3Cost(s, p);
      }
    }();
    return cost.ok() ? *cost : std::numeric_limits<double>::infinity();
  };
}

double Axis::At(int i) const {
  VIEWMAT_DCHECK(i >= 0 && i < count);
  if (count == 1) return lo;
  const double t = static_cast<double>(i) / (count - 1);
  if (log_scale) {
    VIEWMAT_DCHECK(lo > 0.0 && hi > 0.0);
    return lo * std::pow(hi / lo, t);
  }
  return lo + t * (hi - lo);
}

Strategy Winner(const CostFn& cost, const std::vector<Strategy>& candidates,
                const Params& p) {
  VIEWMAT_CHECK(!candidates.empty());
  Strategy best = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (Strategy s : candidates) {
    const double c = cost(s, p);
    if (c < best_cost) {
      best_cost = c;
      best = s;
    }
  }
  return best;
}

RegionGrid ComputeRegions(const CostFn& cost,
                          const std::vector<Strategy>& candidates,
                          const Params& base, const Axis& f_axis,
                          const Axis& p_axis, size_t jobs) {
  RegionGrid grid;
  grid.f_axis = f_axis;
  grid.p_axis = p_axis;
  // Pre-size the raster so each worker fills its own disjoint row slice;
  // cell (fi, pj) depends only on the axis positions, never on execution
  // order, so the grid is bit-identical at any job count.
  grid.winners.assign(static_cast<size_t>(f_axis.count) * p_axis.count,
                      Strategy::kDeferred);
  common::ParallelFor(
      jobs, static_cast<size_t>(f_axis.count), [&](size_t fi) {
        Params pt = base;
        pt.f = f_axis.At(static_cast<int>(fi));
        for (int pj = 0; pj < p_axis.count; ++pj) {
          const Params at_p = pt.WithUpdateProbability(p_axis.At(pj));
          grid.winners[fi * static_cast<size_t>(p_axis.count) + pj] =
              Winner(cost, candidates, at_p);
        }
      });
  return grid;
}

std::string RegionGrid::ToAscii() const {
  std::string out;
  std::set<Strategy> seen;
  // High f at the top, like the paper's figures.
  for (int fi = f_axis.count - 1; fi >= 0; --fi) {
    char label[32];
    std::snprintf(label, sizeof(label), "f=%-8.4g |", f_axis.At(fi));
    out += label;
    for (int pj = 0; pj < p_axis.count; ++pj) {
      const Strategy s = At(fi, pj);
      seen.insert(s);
      out += StrategyCode(s);
    }
    out += '\n';
  }
  out += "            +";
  out.append(static_cast<size_t>(p_axis.count), '-');
  out += '\n';
  char foot[64];
  std::snprintf(foot, sizeof(foot), "             P: %.3g .. %.3g\n",
                p_axis.At(0), p_axis.At(p_axis.count - 1));
  out += foot;
  out += "legend:";
  for (Strategy s : seen) {
    out += ' ';
    out += StrategyCode(s);
    out += '=';
    out += StrategyName(s);
  }
  out += '\n';
  return out;
}

double RegionGrid::WinShare(Strategy s) const {
  if (winners.empty()) return 0.0;
  size_t n = 0;
  for (Strategy w : winners) {
    if (w == s) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(winners.size());
}

}  // namespace viewmat::costmodel
