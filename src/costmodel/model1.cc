#include "costmodel/model1.h"

#include <cmath>

#include "costmodel/yao.h"

namespace viewmat::costmodel {
namespace {
inline double YaoP(const Params& p, double n, double m, double k) {
  return YaoFor(p.use_exact_yao, n, m, k);
}
}  // namespace
}  // namespace viewmat::costmodel

namespace viewmat::costmodel {

double ViewIndexHeight1(const Params& p) {
  const double fanout = p.B / p.n;
  const double entries = p.f * p.N;
  if (entries <= 1.0) return 1.0;
  return std::ceil(std::log(entries) / std::log(fanout));
}

double CQuery1(const Params& p) {
  const double pages_read = p.f * p.f_v * p.b() / 2.0;
  const double tuples_read = p.f * p.f_v * p.N;
  return p.C2 * pages_read + p.C2 * ViewIndexHeight1(p) + p.C1 * tuples_read;
}

double CScreen(const Params& p) { return p.C1 * p.f * p.u(); }

double CAd(const Params& p) {
  const double u = p.u();
  if (u <= 0.0) return 0.0;
  return p.C2 * (p.k / p.q) * YaoP(p, 2.0 * u, 2.0 * u / p.T(), p.l);
}

double CAdRead(const Params& p) { return p.C2 * 2.0 * p.u() / p.T(); }

double CDefRefresh1(const Params& p) {
  const double x1 = YaoP(p, p.f * p.N, p.f * p.b() / 2.0, 2.0 * p.f * p.u());
  return p.C2 * (3.0 + ViewIndexHeight1(p)) * x1;
}

double CImmRefresh1(const Params& p) {
  const double x2 = YaoP(p, p.f * p.N, p.f * p.b() / 2.0, 2.0 * p.f * p.l);
  return (p.k / p.q) * p.C2 * (3.0 + ViewIndexHeight1(p)) * x2;
}

double COverhead(const Params& p) {
  return p.C3 * 2.0 * p.f * p.l * (p.k / p.q);
}

double TotalDeferred1(const Params& p) {
  return CAd(p) + CAdRead(p) + CQuery1(p) + CDefRefresh1(p) + CScreen(p);
}

double TotalImmediate1(const Params& p) {
  return CQuery1(p) + CImmRefresh1(p) + CScreen(p) + COverhead(p);
}

double TotalClustered(const Params& p) {
  return p.C2 * p.b() * p.f * p.f_v + p.C1 * p.N * p.f * p.f_v;
}

double TotalUnclustered(const Params& p) {
  return p.C2 * YaoP(p, p.N, p.b(), p.N * p.f * p.f_v) + p.C1 * p.N * p.f * p.f_v;
}

double TotalSequential(const Params& p) { return p.C2 * p.b() + p.C1 * p.N; }

StatusOr<double> Model1Cost(Strategy s, const Params& p) {
  switch (s) {
    case Strategy::kDeferred:
      return TotalDeferred1(p);
    case Strategy::kImmediate:
      return TotalImmediate1(p);
    case Strategy::kQmClustered:
      return TotalClustered(p);
    case Strategy::kQmUnclustered:
      return TotalUnclustered(p);
    case Strategy::kQmSequential:
      return TotalSequential(p);
    case Strategy::kQmLoopJoin:
    case Strategy::kQmRecompute:
      return Status::InvalidArgument("strategy not defined for Model 1");
  }
  return Status::Internal("unreachable");
}

}  // namespace viewmat::costmodel
