#include "costmodel/crossover.h"

#include <cmath>

#include "costmodel/model3.h"

namespace viewmat::costmodel {

std::optional<double> EqualCostP(const CostAtP& cost_a, const CostAtP& cost_b,
                                 const Params& base, double lo, double hi,
                                 double tol) {
  auto diff = [&](double p) {
    const Params at = base.WithUpdateProbability(p);
    return cost_a(at) - cost_b(at);
  };
  double f_lo = diff(lo);
  double f_hi = diff(hi);
  if (f_lo == 0.0) return lo;
  if (f_hi == 0.0) return hi;
  if (std::signbit(f_lo) == std::signbit(f_hi)) return std::nullopt;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double f_mid = diff(mid);
    if (f_mid == 0.0) return mid;
    if (std::signbit(f_mid) == std::signbit(f_lo)) {
      lo = mid;
      f_lo = f_mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::optional<double> Model3EqualCostP(const Params& base, double l,
                                       double hi) {
  Params p = base;
  p.l = l;
  return EqualCostP([](const Params& at) { return TotalImmediate3(at); },
                    [](const Params& at) { return TotalRecompute3(at); }, p,
                    /*lo=*/0.0, hi);
}

}  // namespace viewmat::costmodel
