#ifndef VIEWMAT_COSTMODEL_PARAMS_H_
#define VIEWMAT_COSTMODEL_PARAMS_H_

#include <string>

#include "common/status.h"

namespace viewmat::common {
class JsonWriter;
}

namespace viewmat::costmodel {

/// The parameter set of the paper's analysis (§3.1), with the paper's
/// default values. All costs are in model milliseconds; the analysis never
/// measures wall-clock time.
///
/// Derived quantities (b, T, u, P) are methods so they can never go stale
/// when a field changes.
struct Params {
  // --- Database shape -------------------------------------------------
  double N = 100000;  ///< tuples in the base relation (R, or R1 in Model 2)
  double S = 100;     ///< bytes per tuple
  double B = 4000;    ///< bytes per disk block
  double n = 20;      ///< bytes per B+-tree index record

  // --- Workload --------------------------------------------------------
  double k = 100;  ///< number of update transactions
  double l = 25;   ///< tuples modified by each update transaction
  double q = 100;  ///< number of view queries

  // --- View definition --------------------------------------------------
  double f = 0.1;    ///< view predicate selectivity (Models 1 and 3; the
                     ///< C_f clause on R1 in Model 2)
  double f_v = 0.1;  ///< fraction of the view retrieved per query
  double f_R2 = 0.1; ///< |R2| as a fraction of |R1| (Model 2 only)

  // --- Unit costs (ms) ---------------------------------------------------
  double C1 = 1;   ///< CPU cost to screen one record against a predicate
  double C2 = 30;  ///< one disk block read or write
  double C3 = 1;   ///< per tuple per transaction to maintain the in-memory
                   ///< A and D sets in immediate maintenance

  /// Evaluate the cost formulas with the exact hypergeometric Yao function
  /// instead of the Cardenas approximation. Region boundaries (Figures 2/4)
  /// are knife-edge sensitive to this choice; everything else is not.
  bool use_exact_yao = false;

  /// Fraction of the Model-1 view scanned when recomputing an aggregate
  /// from scratch (Model 3). The paper reuses TOTAL_clustered for this; an
  /// aggregate covers its whole input so the physically meaningful value is
  /// 1.0. Kept as a parameter so the f_v-based reading can be explored.
  double aggregate_scan_fraction = 1.0;

  // --- Derived quantities (paper notation) ------------------------------
  /// Total blocks in the base relation: b = N*S/B.
  double b() const { return N * S / B; }
  /// Tuples per page: T = B/S.
  double T() const { return B / S; }
  /// Tuples updated between view queries: u = k*l/q.
  double u() const { return k * l / q; }
  /// Probability an operation is an update: P = k/(k+q).
  double P() const { return k / (k + q); }

  /// Returns a copy with k set so that P() == p, holding q fixed. This is
  /// how the figures sweep the update probability. Requires 0 <= p < 1.
  Params WithUpdateProbability(double p) const;

  /// Validates that every parameter is in its meaningful range.
  Status Validate() const;

  /// Multi-line "name = value" dump used by bench_params_table.
  std::string ToString() const;

  /// Serializes every field plus the derived quantities (b, T, u, P) as one
  /// JSON object onto `w`. The single definition backing both BENCH report
  /// "params" blocks and explain reports, so their key sets never diverge.
  void WriteJson(common::JsonWriter* w) const;
};

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_PARAMS_H_
