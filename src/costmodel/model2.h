#ifndef VIEWMAT_COSTMODEL_MODEL2_H_
#define VIEWMAT_COSTMODEL_MODEL2_H_

#include "common/status.h"
#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::costmodel {

/// Model 2 (§3.4): V is the natural join of R1 (N tuples, clustered B+-tree
/// on the restriction field) and R2 (f_R2*N tuples, clustered hashing on the
/// join key). A clause C_f restricts R1 with selectivity f; every matching
/// R1 tuple joins exactly one R2 tuple, so V has f*N tuples. Half the
/// attributes of each relation are projected, so view tuples are S bytes and
/// V occupies f*b pages. Only R1 is ever updated.

/// Height of the B+-tree index on the f*N-tuple view (same form as Model 1).
double ViewIndexHeight2(const Params& p);

/// C_query2 = C2*H_vi + C2*(f_v*f*b) + C1*(f_v*f*N): index descent plus a
/// clustered scan of the queried view fraction. Paid by both maintenance
/// strategies.
double CQuery2(const Params& p);

/// Deferred refresh: join A1 and D1 to R2 through its hash index, then patch
/// the view.
///   X3 = y(f_R2*N, f_R2*b, 2*f*u)   pages fetched from R2
///   X4 = y(f*N,    f*b,    2*f*u)   view pages patched at (3+H_vi) I/Os
/// plus C1 per A1/D1 tuple handled (2u of them).
double CDefRefresh2(const Params& p);

/// Immediate refresh per query: the same shape once per transaction with l
/// in place of u, scaled by k/q.
double CImmRefresh2(const Params& p);

/// TOTAL_deferred-2 = C_AD + C_ADread + C_def-refresh2 + C_query2 + C_screen.
/// (C_AD and C_ADread carry over from Model 1 unchanged, per §3.4.1.)
double TotalDeferred2(const Params& p);

/// TOTAL_immediate-2 = C_imm-refresh2 + C_query2 + C_overhead + C_screen.
double TotalImmediate2(const Params& p);

/// TOT_loop (§3.4.3): nested-loops join with R1 outer (clustered B+-tree
/// scan of the restricted, queried fraction) and R2 inner via its hash
/// index, R2 pages pinned in the buffer pool after first read:
///   C2*ceil(log_{B/n} N) + C2*(f*f_v*b) + C2*y(f_R2*N, f_R2*b, f*f_v*N)
///   + 2*C1*(N*f*f_v)
double TotalLoopJoin(const Params& p);

/// Dispatch by strategy; only the three §3.5 contenders are valid.
StatusOr<double> Model2Cost(Strategy s, const Params& p);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_MODEL2_H_
