#include "costmodel/params.h"

#include <cstdio>

#include "common/json.h"

namespace viewmat::costmodel {

Params Params::WithUpdateProbability(double p) const {
  Params out = *this;
  // P = k/(k+q)  =>  k = q * P/(1-P). p is clamped just below 1 so sweeps
  // over [0, 1) stay finite.
  if (p < 0.0) p = 0.0;
  if (p >= 1.0) p = 0.999999;
  out.k = q * p / (1.0 - p);
  return out;
}

Status Params::Validate() const {
  if (N <= 0) return Status::InvalidArgument("N must be positive");
  if (S <= 0) return Status::InvalidArgument("S must be positive");
  if (B < S) return Status::InvalidArgument("block size B must be >= tuple size S");
  if (n <= 0 || n > B)
    return Status::InvalidArgument("index record size n must be in (0, B]");
  if (B / n < 2.0)
    return Status::InvalidArgument("index fanout B/n must be at least 2");
  if (k < 0) return Status::InvalidArgument("k must be non-negative");
  if (l <= 0) return Status::InvalidArgument("l must be positive");
  if (q <= 0) return Status::InvalidArgument("q must be positive");
  if (f < 0 || f > 1) return Status::InvalidArgument("f must be in [0,1]");
  if (f_v < 0 || f_v > 1) return Status::InvalidArgument("f_v must be in [0,1]");
  if (f_R2 <= 0 || f_R2 > 1)
    return Status::InvalidArgument("f_R2 must be in (0,1]");
  if (C1 < 0 || C2 < 0 || C3 < 0)
    return Status::InvalidArgument("unit costs must be non-negative");
  if (aggregate_scan_fraction < 0 || aggregate_scan_fraction > 1)
    return Status::InvalidArgument("aggregate_scan_fraction must be in [0,1]");
  return Status::OK();
}

std::string Params::ToString() const {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "N    = %.0f   tuples in relation\n"
                "S    = %.0f     bytes per tuple\n"
                "B    = %.0f    bytes per block\n"
                "b    = %.1f  total blocks (N*S/B)\n"
                "T    = %.1f    tuples per page (B/S)\n"
                "n    = %.0f      bytes per index record\n"
                "k    = %.2f  update transactions\n"
                "l    = %.0f     tuples per update transaction\n"
                "q    = %.0f    view queries\n"
                "u    = %.2f  tuples updated between queries (k*l/q)\n"
                "P    = %.4f update probability (k/(k+q))\n"
                "f    = %.4f view predicate selectivity\n"
                "f_v  = %.4f fraction of view retrieved per query\n"
                "f_R2 = %.4f |R2| / |R1|\n"
                "C1   = %.2f  ms to screen a record\n"
                "C2   = %.2f ms per disk read/write\n"
                "C3   = %.2f  ms/tuple/transaction for A,D upkeep",
                N, S, B, b(), T(), n, k, l, q, u(), P(), f, f_v, f_R2, C1, C2,
                C3);
  return buf;
}

void Params::WriteJson(common::JsonWriter* w) const {
  w->BeginObject();
  w->KV("N", N);
  w->KV("S", S);
  w->KV("B", B);
  w->KV("n", n);
  w->KV("k", k);
  w->KV("l", l);
  w->KV("q", q);
  w->KV("f", f);
  w->KV("f_v", f_v);
  w->KV("f_R2", f_R2);
  w->KV("C1", C1);
  w->KV("C2", C2);
  w->KV("C3", C3);
  w->KV("use_exact_yao", use_exact_yao);
  w->KV("aggregate_scan_fraction", aggregate_scan_fraction);
  // Derived quantities, for report readers that don't re-derive.
  w->KV("b", b());
  w->KV("T", T());
  w->KV("u", u());
  w->KV("P", P());
  w->EndObject();
}

}  // namespace viewmat::costmodel
