#include "costmodel/model2.h"

#include <cmath>

#include "costmodel/model1.h"
#include "costmodel/yao.h"

namespace viewmat::costmodel {
namespace {
inline double YaoP(const Params& p, double n, double m, double k) {
  return YaoFor(p.use_exact_yao, n, m, k);
}
}  // namespace
}  // namespace viewmat::costmodel

namespace viewmat::costmodel {

double ViewIndexHeight2(const Params& p) {
  // The join view also has f*N tuples, so the index height matches Model 1.
  return ViewIndexHeight1(p);
}

double CQuery2(const Params& p) {
  const double pages_read = p.f_v * p.f * p.b();
  const double tuples_read = p.f_v * p.f * p.N;
  return p.C2 * ViewIndexHeight2(p) + p.C2 * pages_read + p.C1 * tuples_read;
}

double CDefRefresh2(const Params& p) {
  const double u = p.u();
  const double x3 = YaoP(p, p.f_R2 * p.N, p.f_R2 * p.b(), 2.0 * p.f * u);
  const double x4 = YaoP(p, p.f * p.N, p.f * p.b(), 2.0 * p.f * u);
  return p.C2 * x3 + p.C1 * 2.0 * u +
         p.C2 * (3.0 + ViewIndexHeight2(p)) * x4;
}

double CImmRefresh2(const Params& p) {
  const double x5 = YaoP(p, p.f_R2 * p.N, p.f_R2 * p.b(), 2.0 * p.f * p.l);
  const double x6 = YaoP(p, p.f * p.N, p.f * p.b(), 2.0 * p.f * p.l);
  const double per_txn =
      p.C2 * x5 + p.C1 * 2.0 * p.l + p.C2 * (3.0 + ViewIndexHeight2(p)) * x6;
  return (p.k / p.q) * per_txn;
}

double TotalDeferred2(const Params& p) {
  return CAd(p) + CAdRead(p) + CDefRefresh2(p) + CQuery2(p) + CScreen(p);
}

double TotalImmediate2(const Params& p) {
  return CImmRefresh2(p) + CQuery2(p) + COverhead(p) + CScreen(p);
}

double TotalLoopJoin(const Params& p) {
  const double fanout = p.B / p.n;
  const double btree_descent = std::ceil(std::log(p.N) / std::log(fanout));
  const double outer_pages = p.f * p.f_v * p.b();
  const double outer_tuples = p.N * p.f * p.f_v;
  const double inner_pages = YaoP(p, p.f_R2 * p.N, p.f_R2 * p.b(), outer_tuples);
  return p.C2 * btree_descent + p.C2 * outer_pages + p.C2 * inner_pages +
         2.0 * p.C1 * outer_tuples;
}

StatusOr<double> Model2Cost(Strategy s, const Params& p) {
  switch (s) {
    case Strategy::kDeferred:
      return TotalDeferred2(p);
    case Strategy::kImmediate:
      return TotalImmediate2(p);
    case Strategy::kQmLoopJoin:
      return TotalLoopJoin(p);
    case Strategy::kQmClustered:
    case Strategy::kQmUnclustered:
    case Strategy::kQmSequential:
    case Strategy::kQmRecompute:
      return Status::InvalidArgument("strategy not defined for Model 2");
  }
  return Status::Internal("unreachable");
}

}  // namespace viewmat::costmodel
