#include "costmodel/yao.h"

#include <algorithm>
#include <cstdint>
#include <cmath>

namespace viewmat::costmodel {

double YaoExact(int64_t n, int64_t m, int64_t k) {
  if (n <= 0 || m <= 0 || k <= 0) return 0.0;
  if (k >= n) return static_cast<double>(m);
  if (m == 1) return 1.0;
  // p = records per block; the probability that a fixed block is *not*
  // touched is C(n - p, k) / C(n, k) = prod_{i=0}^{k-1} (n - p - i)/(n - i).
  const double p = static_cast<double>(n) / static_cast<double>(m);
  double miss = 1.0;
  for (int64_t i = 0; i < k; ++i) {
    const double numer = static_cast<double>(n) - p - static_cast<double>(i);
    const double denom = static_cast<double>(n) - static_cast<double>(i);
    if (numer <= 0.0) {
      miss = 0.0;
      break;
    }
    miss *= numer / denom;
  }
  return static_cast<double>(m) * (1.0 - miss);
}

double YaoApprox(double n, double m, double k) {
  if (n <= 0.0 || m <= 0.0 || k <= 0.0) return 0.0;
  if (k >= n) return m;
  if (m <= 1.0) return std::min(m, k);
  return m * (1.0 - std::pow(1.0 - 1.0 / m, k));
}

double Yao(double n, double m, double k) {
  const double y = YaoApprox(n, m, k);
  // The exact function never exceeds the block count or the access count.
  return std::min({y, m, k > 0.0 ? k : 0.0});
}

double YaoFor(bool exact, double n, double m, double k) {
  if (!exact) return Yao(n, m, k);
  if (n <= 0.0 || m <= 0.0 || k <= 0.0) return 0.0;
  const auto r = [](double x) { return static_cast<int64_t>(x + 0.5); };
  return YaoExact(std::max<int64_t>(r(n), 1), std::max<int64_t>(r(m), 1),
                  std::max<int64_t>(r(k), 1));
}

}  // namespace viewmat::costmodel
