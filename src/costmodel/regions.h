#ifndef VIEWMAT_COSTMODEL_REGIONS_H_
#define VIEWMAT_COSTMODEL_REGIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::costmodel {

/// Cost of one strategy at a parameter point. Regions are computed over an
/// arbitrary candidate set so the same rasterizer serves Model 1
/// (deferred/immediate/clustered/unclustered/sequential) and Model 2
/// (deferred/immediate/loopjoin).
using CostFn = std::function<double(Strategy, const Params&)>;

/// Axis of a region plot: `count` samples spread over [lo, hi], linearly or
/// logarithmically (the paper's f axis is best viewed log-scaled).
struct Axis {
  double lo = 0.0;
  double hi = 1.0;
  int count = 50;
  bool log_scale = false;

  /// The i-th sample position, i in [0, count).
  double At(int i) const;
};

/// A rasterized winner-region plot over (P, f), as in Figures 2, 3, 4, 6, 7:
/// cell (i, j) holds the cheapest strategy at f = f_axis.At(i),
/// P = p_axis.At(j).
struct RegionGrid {
  Axis f_axis;
  Axis p_axis;
  std::vector<Strategy> winners;  ///< row-major, f major, size f.count*p.count

  Strategy At(int fi, int pj) const { return winners[fi * p_axis.count + pj]; }

  /// Renders an ASCII map (one StrategyCode character per cell, f rows from
  /// high to low, P columns from low to high) plus a legend listing only the
  /// strategies that actually win somewhere.
  std::string ToAscii() const;

  /// Fraction of cells won by `s` — handy for tests ("deferred never wins
  /// in Figure 2", "deferred wins a band in Figure 4").
  double WinShare(Strategy s) const;
};

/// Computes the winner at a single point among `candidates`.
Strategy Winner(const CostFn& cost, const std::vector<Strategy>& candidates,
                const Params& p);

/// The strategies applicable to a view model (1 = select-project, 2 = join,
/// 3 = aggregate) — the candidate sets the paper's figures, the advisor,
/// and the explain reports all rank. One definition so they can never
/// drift apart.
const std::vector<Strategy>& ModelCandidates(int model);

/// The model's TOTAL_* evaluator packaged as a CostFn. Parameter points a
/// formula rejects (Model*Cost returns an error) evaluate to +infinity, so
/// the strategy simply never wins there — the convention Winner() and
/// ComputeRegions() already assume.
CostFn ModelCostFn(int model);

/// Rasterizes winner regions over an (f, P) grid. `base` provides every
/// parameter other than f and P; P is applied via WithUpdateProbability.
/// `jobs` spreads the f rows over worker threads (1 = serial, 0 = one per
/// core); each row fills a disjoint slice of the pre-sized winner vector,
/// so the grid is identical at any job count.
RegionGrid ComputeRegions(const CostFn& cost,
                          const std::vector<Strategy>& candidates,
                          const Params& base, const Axis& f_axis,
                          const Axis& p_axis, size_t jobs = 1);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_REGIONS_H_
