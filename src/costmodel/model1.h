#ifndef VIEWMAT_COSTMODEL_MODEL1_H_
#define VIEWMAT_COSTMODEL_MODEL1_H_

#include "common/status.h"
#include "costmodel/params.h"
#include "costmodel/strategy.h"

namespace viewmat::costmodel {

/// Model 1 (§3.2): the view is a selection with selectivity f and a
/// projection of exactly half the attributes of a single relation R. The
/// view therefore holds f*N tuples on f*b/2 pages (projected tuples are
/// S/2 bytes, so 2T fit per page). All costs are the average model-ms per
/// view query over k updates and q queries.

/// Height of the B+-tree index on the view, excluding data pages:
/// ceil(log_{B/n}(f*N)) with all pages assumed packed full.
double ViewIndexHeight1(const Params& p);

/// Shared cost components (deferred and immediate pay some of the same
/// terms; exposing them individually lets tests pin each formula).
///
/// C_query1 = C2*(f*f_v*b/2) + C2*H_vi + C1*(f*f_v*N): one index descent,
/// a clustered scan of the queried fraction, and a C1 screen per tuple read.
double CQuery1(const Params& p);

/// C_screen = C1*f*u: stage 1 (t-lock break) is free; the fraction f of the
/// u tuples updated per query proceed to the stage-2 satisfiability
/// substitution at C1 each. Identical for deferred and immediate.
double CScreen(const Params& p);

/// C_AD = C2*(k/q)*y(2u, 2u/T, l): the single extra write-path I/O per
/// updated tuple for keeping the AD differential file, amortized with the
/// Yao function because several of a transaction's l tuples can share an
/// AD page. Deferred only.
double CAd(const Params& p);

/// C_ADread = C2*(2u/T): sequential read of the whole AD file at refresh
/// time. Deferred only.
double CAdRead(const Params& p);

/// Deferred refresh: X1 = y(f*N, f*b/2, 2*f*u) view pages are updated, each
/// costing (3 + H_vi) I/Os (index descent, data read+write, leaf write).
double CDefRefresh1(const Params& p);

/// Immediate refresh per query: k/q transactions each touch
/// X2 = y(f*N, f*b/2, 2*f*l) view pages at (3 + H_vi) I/Os.
double CImmRefresh1(const Params& p);

/// C_overhead = C3*2*f*l*(k/q): resetting the in-memory A and D structures
/// after every transaction. Immediate only.
double COverhead(const Params& p);

/// TOTAL_deferred-1 = C_AD + C_ADread + C_query1 + C_def-refresh + C_screen.
double TotalDeferred1(const Params& p);

/// TOTAL_immediate-1 = C_query1 + C_imm-refresh + C_screen + C_overhead.
double TotalImmediate1(const Params& p);

/// TOTAL_clustered = C2*b*f*f_v + C1*N*f*f_v.
double TotalClustered(const Params& p);

/// TOTAL_unclustered = C2*y(N, b, N*f*f_v) + C1*N*f*f_v.
double TotalUnclustered(const Params& p);

/// TOTAL_sequential = C2*b + C1*N.
double TotalSequential(const Params& p);

/// Dispatch by strategy. kQmLoopJoin and kQmRecompute are invalid here.
StatusOr<double> Model1Cost(Strategy s, const Params& p);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_MODEL1_H_
