#ifndef VIEWMAT_COSTMODEL_STRATEGY_H_
#define VIEWMAT_COSTMODEL_STRATEGY_H_

namespace viewmat::costmodel {

/// The view materialization strategies compared in the paper. The query
/// modification entries differ only in the access plan used against the
/// base relations.
enum class Strategy {
  kDeferred,        ///< materialized view refreshed just before each query (§2.2)
  kImmediate,       ///< materialized view refreshed after every transaction (§2.1)
  kQmClustered,     ///< query modification, clustered index scan on R
  kQmUnclustered,   ///< query modification, secondary index scan on R
  kQmSequential,    ///< query modification, full sequential scan of R
  kQmLoopJoin,      ///< query modification, nested-loops join (Model 2)
  kQmRecompute,     ///< recompute aggregate via clustered scan (Model 3)
};

/// Short stable name used in bench output and region plots.
inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDeferred:
      return "deferred";
    case Strategy::kImmediate:
      return "immediate";
    case Strategy::kQmClustered:
      return "clustered";
    case Strategy::kQmUnclustered:
      return "unclustered";
    case Strategy::kQmSequential:
      return "sequential";
    case Strategy::kQmLoopJoin:
      return "loopjoin";
    case Strategy::kQmRecompute:
      return "recompute";
  }
  return "?";
}

/// One-character code used to rasterize winner-region figures.
inline char StrategyCode(Strategy s) {
  switch (s) {
    case Strategy::kDeferred:
      return 'D';
    case Strategy::kImmediate:
      return 'I';
    case Strategy::kQmClustered:
      return 'C';
    case Strategy::kQmUnclustered:
      return 'U';
    case Strategy::kQmSequential:
      return 'S';
    case Strategy::kQmLoopJoin:
      return 'L';
    case Strategy::kQmRecompute:
      return 'R';
  }
  return '?';
}

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_STRATEGY_H_
