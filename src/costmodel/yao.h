#ifndef VIEWMAT_COSTMODEL_YAO_H_
#define VIEWMAT_COSTMODEL_YAO_H_

#include <cstdint>

namespace viewmat::costmodel {

/// Yao's function y(n, m, k): the expected number of distinct blocks touched
/// when accessing k records chosen at random (without replacement) from n
/// records stored uniformly on m blocks [Yao77]. It is the central quantity
/// in the paper's cost formulas (Appendix B) and the reason deferred
/// maintenance can beat immediate maintenance: y is subadditive in k
/// ("triangle inequality", paper §4), so batching accesses touches fewer
/// blocks than spreading them across transactions.

/// Exact hypergeometric form: m * (1 - C(n - n/m, k) / C(n, k)), evaluated
/// as a stable running product. Requires integral semantics; inputs are
/// rounded to the nearest integers. Returns 0 when k <= 0 or n <= 0, and m
/// when k >= n.
double YaoExact(int64_t n, int64_t m, int64_t k);

/// Cardenas' approximation m * (1 - (1 - 1/m)^k) [Card75], which the paper
/// notes is very close to the exact value when the blocking factor n/m
/// exceeds ~10. Unlike the exact form it extends naturally to real-valued
/// n, m, k, which the cost model needs (e.g. y(2u, 2u/T, l) with fractional
/// page counts). Degenerate cases: k <= 0 or m <= 0 -> 0; m <= 1 -> the
/// whole (partial) file fits one block, so the result is min(m, k).
double YaoApprox(double n, double m, double k);

/// The y(n, m, k) used throughout the cost model. Clamped to the hard upper
/// bounds y <= m and y <= k that hold for the exact function.
double Yao(double n, double m, double k);

/// Selects between the Cardenas approximation (default) and the exact
/// hypergeometric form (arguments rounded to integers, minimum one block
/// for a non-empty file). The choice matters at knife-edge region
/// boundaries — see bench_ablation_yao_variant and EXPERIMENTS.md.
double YaoFor(bool exact, double n, double m, double k);

}  // namespace viewmat::costmodel

#endif  // VIEWMAT_COSTMODEL_YAO_H_
