// The EMP-DEPT scenario of §3.5: a view joining EMPLOYEE to DEPARTMENT on
// the department number, where queries fetch a single employee's joined
// record and updates touch one employee at a time. The paper's analysis
// says query modification should win for any realistic update probability
// (P >= .08); this example reproduces that with both the cost model and a
// metered run of the actual engines.

#include <cstdio>
#include <string>

#include "costmodel/model2.h"
#include "db/catalog.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "view/advisor.h"
#include "view/immediate.h"
#include "view/query_modification.h"

using namespace viewmat;

namespace {

db::Tuple Emp(int64_t eno, int64_t dno, double salary) {
  return db::Tuple({db::Value(eno), db::Value(dno), db::Value(salary),
                    db::Value("emp-" + std::to_string(eno))});
}

db::Tuple Dept(int64_t dno, const std::string& name) {
  return db::Tuple({db::Value(dno), db::Value(name)});
}

}  // namespace

int main() {
  // --- The analytical verdict first (the paper's modeling) ---------------
  costmodel::Params params;
  params.f = 1.0;            // the view covers every employee
  params.l = 1.0;            // updates change one EMPLOYEE tuple
  params.f_v = 1.0 / params.N;  // queries fetch a single EMP-DEPT record
  std::printf("%s\n", view::AdviceReport(view::Advise(
                          view::ViewModel::kJoin,
                          params.WithUpdateProbability(0.2)))
                          .c_str());

  // --- Now the real thing --------------------------------------------------
  storage::CostTracker tracker(1.0, 30.0, 1.0);
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 256);
  db::Catalog catalog(&pool);

  db::Schema emp_schema({db::Field::Int64("eno"), db::Field::Int64("dno"),
                         db::Field::Double("salary"),
                         db::Field::String("name", 20)});
  db::Schema dept_schema(
      {db::Field::Int64("dno"), db::Field::String("dname", 20)});
  db::Relation* emp = *catalog.CreateRelation(
      "employee", emp_schema, db::AccessMethod::kClusteredBTree, 0);
  db::Relation* dept = *catalog.CreateRelation(
      "department", dept_schema, db::AccessMethod::kClusteredHash, 0);

  constexpr int64_t kEmployees = 5000;
  constexpr int64_t kDepartments = 50;
  for (int64_t d = 0; d < kDepartments; ++d) {
    (void)dept->Insert(Dept(d, "dept-" + std::to_string(d)));
  }
  for (int64_t e = 0; e < kEmployees; ++e) {
    (void)emp->Insert(Emp(e, e % kDepartments, 50000.0 + e));
  }

  // EMP-DEPT view: every employee joined to their department.
  view::JoinDef def;
  def.r1 = emp;
  def.r2 = dept;
  def.cf = db::Predicate::True();  // f = 1
  def.r1_join_field = 1;
  def.r1_projection = {0, 2};  // eno, salary
  def.r2_projection = {0, 1};  // dno, dname
  def.view_key_field = 0;

  std::vector<double> salary(kEmployees);
  for (int64_t e = 0; e < kEmployees; ++e) salary[e] = 50000.0 + e;
  auto run_scenario = [&](const char* label, view::ViewStrategy* strategy) {
    (void)pool.FlushAndEvictAll();
    tracker.Reset();
    // 40 single-employee raises interleaved with 10 single-record lookups
    // (P = 0.8: update-heavy, the regime where materialization loses).
    for (int round = 0; round < 10; ++round) {
      for (int u = 0; u < 4; ++u) {
        const int64_t eno = (round * 317 + u * 41) % kEmployees;
        db::Transaction txn;
        txn.Update(emp, Emp(eno, eno % kDepartments, salary[eno]),
                   Emp(eno, eno % kDepartments, salary[eno] + 100.0));
        salary[eno] += 100.0;
        (void)strategy->OnTransaction(txn);
        (void)pool.FlushAndEvictAll();  // commit boundary
      }
      const int64_t probe = (round * 997) % kEmployees;
      (void)strategy->Query(probe, probe,
                            [](const db::Tuple&, int64_t) { return true; });
      (void)pool.FlushAndEvictAll();
    }
    std::printf("  %-22s %8.0f model-ms for 40 updates + 10 lookups\n",
                label, tracker.TotalMs());
  };

  std::printf("metered engines on a %lld-employee database:\n",
              static_cast<long long>(kEmployees));
  view::QmJoinStrategy qm(def, &tracker);
  run_scenario("query modification", &qm);

  view::ImmediateStrategy immediate(def, &tracker);
  (void)immediate.InitializeFromBase();
  run_scenario("immediate maintenance", &immediate);

  std::printf(
      "\nthe paper's conclusion holds: for single-record lookups against a "
      "large join view,\nmaintaining a materialized copy is wasted work — "
      "rewrite the query instead.\n");
  return 0;
}
