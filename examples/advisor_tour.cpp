// A tour of the strategy advisor: §4 of the paper boils down to "the best
// materialization strategy is application-dependent". This example walks
// the advisor through the situations the paper calls out and prints its
// recommendation with the full cost ranking for each.

#include <cstdio>

#include "costmodel/params.h"
#include "view/advisor.h"

using namespace viewmat;
using costmodel::Params;

namespace {

void Show(const char* headline, view::ViewModel model, const Params& p) {
  std::printf("== %s ==\n%s\n", headline,
              view::AdviceReport(view::Advise(model, p)).c_str());
}

}  // namespace

int main() {
  // 1. The paper's standard setting: a selection view, balanced load.
  Show("standard Model 1 setting (P=.5, f=.1, f_v=.1)",
       view::ViewModel::kSelectProject, Params());

  // 2. Read-mostly dashboard over the same view: materialize it.
  Show("read-mostly workload (P=.05)", view::ViewModel::kSelectProject,
       Params().WithUpdateProbability(0.05));

  // 3. A view whose only access path on the base would be unclustered:
  //    the materialized copy acts as an alternate clustered access path
  //    (§3.3's database-design observation).
  Params big_queries;
  big_queries.f_v = 0.5;
  Show("large queries against the view (f_v=.5, P=.3)",
       view::ViewModel::kSelectProject,
       big_queries.WithUpdateProbability(0.3));

  // 4. Join views cluster related data on one page — materialization's
  //    home turf.
  Show("two-relation join view, defaults", view::ViewModel::kJoin, Params());

  // 5. ...unless the view is huge and the queries are needles (EMP-DEPT).
  Params empdept;
  empdept.f = 1.0;
  empdept.l = 1.0;
  empdept.f_v = 1.0 / empdept.N;
  Show("EMP-DEPT: single-record lookups in a full join view (P=.2)",
       view::ViewModel::kJoin, empdept.WithUpdateProbability(0.2));

  // 6. Aggregates: one stored block replaces a 250-page scan. Maintenance
  //    wins even under extreme update rates.
  Show("sum() over the selection, update-heavy (P=.9)",
       view::ViewModel::kAggregate, Params().WithUpdateProbability(0.9));

  std::printf(
      "summary of §4: high P, high f, or tiny f_v -> rewrite the query; "
      "join views and\naggregates -> materialize; deferred pulls ahead of "
      "immediate as the cost of\nmaintaining the A/D sets (C3) grows.\n");
  return 0;
}
