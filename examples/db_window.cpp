// "Window on a database" (§4's closing speculation): a screenful of query
// results that stays current as the database changes. Deferred maintenance
// is the natural engine for this — transactions stream into the AD
// differential at full speed, and the window refreshes the view only when
// it redraws.
//
// This example simulates a monitoring window over hot inventory items,
// redrawing every few transactions and printing what the user would see.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "db/catalog.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "view/deferred.h"

using namespace viewmat;

namespace {

db::Tuple Item(int64_t sku, int64_t stock, double price) {
  return db::Tuple({db::Value(sku), db::Value(stock), db::Value(price)});
}

}  // namespace

int main() {
  storage::CostTracker tracker(1.0, 30.0, 1.0);
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 128);
  db::Catalog catalog(&pool);

  db::Schema schema({db::Field::Int64("sku"), db::Field::Int64("stock"),
                     db::Field::Double("price")});
  db::Relation* inventory = *catalog.CreateRelation(
      "inventory", schema, db::AccessMethod::kClusteredBTree, 0);

  std::vector<int64_t> stock(200);
  for (int64_t sku = 0; sku < 200; ++sku) {
    stock[sku] = 50 + (sku * 13) % 40;
    (void)inventory->Insert(Item(sku, stock[sku], 9.99 + sku));
  }

  // The window: "watch SKUs 0..19" (the hot shelf).
  view::SelectProjectDef def;
  def.base = inventory;
  def.predicate =
      db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(int64_t{20}));
  def.projection = {0, 1};  // sku, stock
  def.view_key_field = 0;

  view::DeferredStrategy window(def, hr::AdFile::Options{}, &tracker);
  (void)window.InitializeFromBase();

  auto redraw = [&](int frame) {
    std::printf("┌─ inventory window — frame %d (refresh #%llu, %llu "
                "pending) ─┐\n",
                frame,
                static_cast<unsigned long long>(window.refresh_count() + 1),
                static_cast<unsigned long long>(window.pending_tuples()));
    (void)window.Query(0, 7, [](const db::Tuple& t, int64_t) {
      const int64_t units = t.at(1).AsInt64();
      std::string bar(static_cast<size_t>(units / 4), '#');
      std::printf("│ sku %-3lld %-22s %3lld units %s\n",
                  static_cast<long long>(t.at(0).AsInt64()), bar.c_str(),
                  static_cast<long long>(units), units < 30 ? "LOW!" : "");
      return true;
    });
    std::printf("└──────────────────────────────────────────────┘\n\n");
  };

  Random rng(2026);
  redraw(0);
  for (int frame = 1; frame <= 3; ++frame) {
    // A burst of sales between redraws; the window does no work yet.
    for (int txn = 0; txn < 15; ++txn) {
      const int64_t sku = rng.UniformInt(0, 199);
      const int64_t sold = rng.UniformInt(1, 6);
      db::Transaction t;
      t.Update(inventory, Item(sku, stock[sku], 9.99 + sku),
               Item(sku, std::max<int64_t>(stock[sku] - sold, 0),
                    9.99 + sku));
      stock[sku] = std::max<int64_t>(stock[sku] - sold, 0);
      (void)window.OnTransaction(t);
    }
    redraw(frame);
  }

  std::printf("45 transactions absorbed with %llu batched refreshes; total "
              "metered cost %.0f model-ms.\n",
              static_cast<unsigned long long>(window.refresh_count()),
              tracker.TotalMs());
  std::printf("(immediate maintenance would have patched the window 45 "
              "times; query modification would have re-scanned the "
              "relation at every redraw)\n");
  return 0;
}
