// A reporting dashboard built from the library's extension features:
//  - a DeferredViewGroup keeps several selection views over one orders
//    table behind a single shared AD differential (§4's multi-view
//    refresh optimization), and
//  - a MaterializedGroupAggregate maintains revenue-per-region
//    (GROUP BY, the Model 3 generalization), fed from the same
//    transaction stream.
// Sales transactions stream in; redrawing the dashboard costs one shared
// fold plus a handful of aggregate lookups instead of any base-table
// scans. The view group owns applying transactions to the base (it defers
// them in its differential); the aggregate consumes the same net changes
// directly.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "db/catalog.h"
#include "view/group_aggregate.h"
#include "view/view_group.h"

using namespace viewmat;

namespace {

constexpr int64_t kOrders = 3000;
constexpr int64_t kRegions = 6;
const char* kRegionNames[] = {"north", "south", "east",
                              "west",  "core",  "online"};

db::Tuple Order(int64_t id, int64_t region, double amount) {
  return db::Tuple({db::Value(id), db::Value(region), db::Value(amount)});
}

}  // namespace

int main() {
  storage::CostTracker tracker(1.0, 30.0, 1.0);
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 256);
  db::Catalog catalog(&pool);

  db::Schema schema({db::Field::Int64("id"), db::Field::Int64("region"),
                     db::Field::Double("amount")});
  db::Relation* orders = *catalog.CreateRelation(
      "orders", schema, db::AccessMethod::kClusteredBTree, 0);
  std::vector<double> amounts(kOrders);
  Random rng(7);
  for (int64_t id = 0; id < kOrders; ++id) {
    amounts[id] = 10.0 + rng.NextDouble() * 490.0;
    (void)orders->Insert(Order(id, id % kRegions, amounts[id]));
  }

  // Panel views sharing one differential: "recent orders" and "backlog".
  view::DeferredViewGroup panels(orders, hr::AdFile::Options{}, &tracker);
  view::SelectProjectDef recent;
  recent.base = orders;
  recent.predicate = db::Predicate::Compare(0, db::CompareOp::kGe,
                                            db::Value(kOrders - 200));
  recent.projection = {0, 2};
  recent.view_key_field = 0;
  const size_t kRecent = *panels.AddView(recent);
  view::SelectProjectDef backlog;
  backlog.base = orders;
  backlog.predicate = db::Predicate::Compare(0, db::CompareOp::kLt,
                                             db::Value(int64_t{100}));
  backlog.projection = {0, 2};
  backlog.view_key_field = 0;
  const size_t kBacklog = *panels.AddView(backlog);

  // Revenue per region: sum(amount) group by region, maintained with the
  // per-group transition functions.
  view::MaterializedGroupAggregate by_region(&pool, view::AggregateOp::kSum);
  for (int64_t id = 0; id < kOrders; ++id) {
    (void)by_region.ApplyInsert(id % kRegions, amounts[id]);
  }

  auto redraw = [&](int frame) {
    std::printf("======= sales dashboard, frame %d (shared folds so far: "
                "%llu) =======\n",
                frame, static_cast<unsigned long long>(panels.fold_count()));
    std::printf("revenue by region:\n");
    (void)by_region.Scan([&](int64_t region,
                             const view::AggregateState& state) {
      auto v = state.Current();
      std::printf("  %-8s %12.2f\n", kRegionNames[region % kRegions],
                  v.ok() ? v->AsDouble() : 0.0);
      return true;
    });
    double recent_total = 0;
    size_t recent_count = 0;
    (void)panels.Query(kRecent, 0, 1 << 30,
                       [&](const db::Tuple& t, int64_t) {
                         recent_total += t.at(1).AsDouble();
                         ++recent_count;
                         return true;
                       });
    size_t backlog_count = 0;
    (void)panels.Query(kBacklog, 0, 1 << 30,
                       [&](const db::Tuple&, int64_t) {
                         ++backlog_count;
                         return true;
                       });
    std::printf("recent orders: %zu totaling %.2f | backlog rows: %zu\n\n",
                recent_count, recent_total, backlog_count);
  };

  redraw(0);
  for (int frame = 1; frame <= 2; ++frame) {
    // A burst of price corrections between redraws; the panel views absorb
    // them via the shared differential, the aggregate via its per-group
    // transition functions — no base scan anywhere.
    for (int i = 0; i < 25; ++i) {
      const int64_t id = rng.UniformInt(0, kOrders - 1);
      const double old_amount = amounts[id];
      amounts[id] += 5.0;
      db::Transaction txn;
      txn.Update(orders, Order(id, id % kRegions, old_amount),
                 Order(id, id % kRegions, amounts[id]));
      (void)panels.OnTransaction(txn);  // owns the base application (deferred)
      bool needs_recompute = false;
      (void)by_region.ApplyDelete(id % kRegions, old_amount,
                                  &needs_recompute);
      (void)by_region.ApplyInsert(id % kRegions, amounts[id]);
    }
    redraw(frame);
  }
  std::printf("total metered dashboard cost: %.0f model-ms across %llu "
              "group rows and %zu panel views\n",
              tracker.TotalMs(),
              static_cast<unsigned long long>(by_region.group_count()),
              panels.view_count());
  return 0;
}
