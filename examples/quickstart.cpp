// Quickstart: create a relation, define a selection-projection view, and
// answer the same queries with all three materialization strategies —
// query modification, immediate maintenance, and deferred maintenance —
// while the shared cost tracker meters each one in the paper's model
// milliseconds.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "db/catalog.h"
#include "db/predicate.h"
#include "hr/ad_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "view/deferred.h"
#include "view/immediate.h"
#include "view/query_modification.h"

using namespace viewmat;

namespace {

db::Tuple AccountRow(int64_t id, int64_t branch, double balance) {
  return db::Tuple({db::Value(id), db::Value(branch), db::Value(balance)});
}

void RunQueries(const char* label, view::ViewStrategy* strategy,
                storage::BufferPool* pool, storage::CostTracker* tracker) {
  // Start cold so the metered cost reflects real I/O, then flush so pending
  // writes are charged to this phase.
  (void)pool->FlushAndEvictAll();
  const storage::CostCounters before = tracker->counters();
  std::printf("--- %s ---\n", label);
  // "Balances of accounts 0..9 at the watched branches."
  (void)strategy->Query(0, 9, [](const db::Tuple& t, int64_t count) {
    std::printf("  account %lld -> balance %.2f (x%lld)\n",
                static_cast<long long>(t.at(0).AsInt64()),
                t.at(1).AsDouble(), static_cast<long long>(count));
    return true;
  });
  (void)pool->FlushAll();
  std::printf("  [query cost: %.0f model-ms]\n\n",
              tracker->Ms(tracker->counters() - before));
}

}  // namespace

int main() {
  // One simulated database: 4 KB pages, 30 ms per I/O, small buffer pool.
  storage::CostTracker tracker(/*c1=*/1.0, /*c2=*/30.0, /*c3=*/1.0);
  storage::SimulatedDisk disk(4000, &tracker);
  storage::BufferPool pool(&disk, 128);
  db::Catalog catalog(&pool);

  // accounts(id, branch, balance), clustered B+-tree on id.
  db::Schema schema({db::Field::Int64("id"), db::Field::Int64("branch"),
                     db::Field::Double("balance")});
  db::Relation* accounts =
      *catalog.CreateRelation("accounts", schema,
                              db::AccessMethod::kClusteredBTree, 0);
  for (int64_t id = 0; id < 1000; ++id) {
    (void)accounts->Insert(AccountRow(id, id % 10, 100.0 + id));
  }

  // View: balances of low-numbered accounts —
  //   define view small_accts (id, balance) where accounts.id < 100
  view::SelectProjectDef def;
  def.base = accounts;
  def.predicate =
      db::Predicate::Compare(0, db::CompareOp::kLt, db::Value(int64_t{100}));
  def.projection = {0, 2};  // id, balance
  def.view_key_field = 0;

  // Three engines over three logical copies of the workload. (Sharing one
  // base relation here is fine: QM reads it, immediate applies the
  // transaction once, deferred runs against its own HR-deferred state in a
  // real deployment — see tests/view/equivalence_test.cc for the isolated
  // version.)
  view::QmSelectProjectStrategy qm(def, &tracker);
  RunQueries("query modification (no materialized copy)", &qm, &pool,
             &tracker);

  view::ImmediateStrategy immediate(def, &tracker);
  (void)immediate.InitializeFromBase();
  // A transaction: account 3 receives a deposit.
  db::Transaction txn;
  txn.Update(accounts, AccountRow(3, 3, 103.0), AccountRow(3, 3, 1000.0));
  (void)immediate.OnTransaction(txn);
  RunQueries("immediate maintenance (refreshed at commit)", &immediate,
             &pool, &tracker);

  view::DeferredStrategy deferred(def, hr::AdFile::Options{}, &tracker);
  (void)deferred.InitializeFromBase();
  db::Transaction txn2;
  txn2.Update(accounts, AccountRow(7, 7, 107.0), AccountRow(7, 7, 7777.0));
  (void)deferred.OnTransaction(txn2);
  std::printf("deferred has %llu pending differential tuples before the "
              "query triggers its refresh\n\n",
              static_cast<unsigned long long>(deferred.pending_tuples()));
  RunQueries("deferred maintenance (refreshed just before the query)",
             &deferred, &pool, &tracker);

  std::printf("total metered cost: %.0f model-ms (%llu reads, %llu writes, "
              "%llu screens)\n",
              tracker.TotalMs(),
              static_cast<unsigned long long>(tracker.counters().disk_reads),
              static_cast<unsigned long long>(tracker.counters().disk_writes),
              static_cast<unsigned long long>(
                  tracker.counters().screen_tests));
  return 0;
}
