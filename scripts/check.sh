#!/usr/bin/env bash
# One-command repo check: plain build + full test suite (including the
# bench-smoke JSON-schema and determinism tests), then an address+undefined
# sanitizer build (VIEWMAT_SANITIZE) running the same suite plus the
# crash-safety torture and recovery labels (the torture label includes the
# exhaustive crash-point sweep: one crashed run per disk operation for every
# maintenance strategy) and the wire-protocol chaos label, then a
# thread-sanitized build running the concurrency suites (tsan label) and the
# chaos suites again under TSan.
#
# Usage: scripts/check.sh [--quick]
#   --quick   plain build only (skip the sanitizer builds and torture label)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== plain build =="
cmake -S . -B build >/dev/null
cmake --build build -j "$jobs"
echo "== plain tests (tier 1 + bench-smoke) =="
ctest --test-dir build --output-on-failure -LE torture

if [[ "$quick" == 1 ]]; then
  echo "check.sh --quick: OK"
  exit 0
fi

echo "== bench regression gate (bench_diff vs committed baselines) =="
# Fresh full-mode reports diffed against the committed BENCH_*.json at a 5%
# threshold: any cost metric growing past it (or any metric/run/table going
# missing) fails the check. The sweeps are deterministic, so a clean tree
# diffs clean; an intentional perf change ships with regenerated baselines.
./build/bench/bench_sim_validation --json build/BENCH_sim_validation.new.json \
  --jobs "$jobs" >/dev/null
./build/bench/bench_diff BENCH_sim_validation.json \
  build/BENCH_sim_validation.new.json --threshold 5%
./build/bench/bench_fault_sweep --json build/BENCH_fault_sweep.new.json \
  --jobs "$jobs" >/dev/null
./build/bench/bench_diff BENCH_fault_sweep.json \
  build/BENCH_fault_sweep.new.json --threshold 5%
./build/bench/bench_server --json build/BENCH_server.new.json \
  --jobs "$jobs" >/dev/null
./build/bench/bench_diff BENCH_server.json \
  build/BENCH_server.new.json --threshold 5%
./build/bench/bench_server_scaling --json build/BENCH_server_scaling.new.json \
  --jobs "$jobs" >/dev/null
./build/bench/bench_diff BENCH_server_scaling.json \
  build/BENCH_server_scaling.new.json --threshold 5%
./build/bench/bench_chaos --json build/BENCH_chaos.new.json \
  --jobs "$jobs" >/dev/null
./build/bench/bench_diff BENCH_chaos.json \
  build/BENCH_chaos.new.json --threshold 5%

echo "== server smoke (multi-client view server + serializability oracle) =="
ctest --test-dir build --output-on-failure -L server

echo "== scaling lane (worker sweep determinism + shard/stripe stress) =="
ctest --test-dir build --output-on-failure -L scaling

echo "== sanitized build (address;undefined) =="
cmake -S . -B build-asan -DVIEWMAT_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "$jobs"
echo "== sanitized tests =="
ctest --test-dir build-asan --output-on-failure -LE torture
echo "== sanitized recovery label (WAL + RecoveryManager + per-strategy) =="
ctest --test-dir build-asan --output-on-failure -L recovery
echo "== sanitized torture label (exhaustive crash-point sweep) =="
ctest --test-dir build-asan --output-on-failure -L torture
echo "== sanitized chaos label (wire protocol + chaos oracle) =="
ctest --test-dir build-asan --output-on-failure -L chaos

echo "== thread-sanitized build =="
cmake -S . -B build-tsan -DVIEWMAT_SANITIZE="thread" >/dev/null
cmake --build build-tsan -j "$jobs"
echo "== thread-sanitized concurrency suites (tsan label) =="
ctest --test-dir build-tsan --output-on-failure -L tsan
echo "== thread-sanitized scaling smoke (worker sweep under TSan) =="
ctest --test-dir build-tsan --output-on-failure -L scaling
echo "== thread-sanitized chaos suites (oracle fan-out under TSan) =="
ctest --test-dir build-tsan --output-on-failure -L chaos

echo "check.sh: OK"
