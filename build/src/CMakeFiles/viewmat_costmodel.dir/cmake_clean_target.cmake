file(REMOVE_RECURSE
  "libviewmat_costmodel.a"
)
