# Empty dependencies file for viewmat_costmodel.
# This may be replaced when dependencies are built.
