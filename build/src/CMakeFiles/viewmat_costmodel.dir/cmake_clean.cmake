file(REMOVE_RECURSE
  "CMakeFiles/viewmat_costmodel.dir/costmodel/crossover.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/crossover.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model1.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model1.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model2.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model2.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model3.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/model3.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/params.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/params.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/regions.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/regions.cc.o.d"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/yao.cc.o"
  "CMakeFiles/viewmat_costmodel.dir/costmodel/yao.cc.o.d"
  "libviewmat_costmodel.a"
  "libviewmat_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
