
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/crossover.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/crossover.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/crossover.cc.o.d"
  "/root/repo/src/costmodel/model1.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model1.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model1.cc.o.d"
  "/root/repo/src/costmodel/model2.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model2.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model2.cc.o.d"
  "/root/repo/src/costmodel/model3.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model3.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/model3.cc.o.d"
  "/root/repo/src/costmodel/params.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/params.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/params.cc.o.d"
  "/root/repo/src/costmodel/regions.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/regions.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/regions.cc.o.d"
  "/root/repo/src/costmodel/yao.cc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/yao.cc.o" "gcc" "src/CMakeFiles/viewmat_costmodel.dir/costmodel/yao.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
