# Empty compiler generated dependencies file for viewmat_hr.
# This may be replaced when dependencies are built.
