file(REMOVE_RECURSE
  "CMakeFiles/viewmat_hr.dir/hr/ad_file.cc.o"
  "CMakeFiles/viewmat_hr.dir/hr/ad_file.cc.o.d"
  "CMakeFiles/viewmat_hr.dir/hr/hypothetical_relation.cc.o"
  "CMakeFiles/viewmat_hr.dir/hr/hypothetical_relation.cc.o.d"
  "libviewmat_hr.a"
  "libviewmat_hr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_hr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
