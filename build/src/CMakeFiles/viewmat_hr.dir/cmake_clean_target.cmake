file(REMOVE_RECURSE
  "libviewmat_hr.a"
)
