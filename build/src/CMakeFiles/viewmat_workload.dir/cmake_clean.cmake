file(REMOVE_RECURSE
  "CMakeFiles/viewmat_workload.dir/workload/workload.cc.o"
  "CMakeFiles/viewmat_workload.dir/workload/workload.cc.o.d"
  "libviewmat_workload.a"
  "libviewmat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
