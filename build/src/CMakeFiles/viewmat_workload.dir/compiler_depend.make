# Empty compiler generated dependencies file for viewmat_workload.
# This may be replaced when dependencies are built.
