file(REMOVE_RECURSE
  "libviewmat_workload.a"
)
