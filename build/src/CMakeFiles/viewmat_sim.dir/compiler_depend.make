# Empty compiler generated dependencies file for viewmat_sim.
# This may be replaced when dependencies are built.
