file(REMOVE_RECURSE
  "CMakeFiles/viewmat_sim.dir/sim/report.cc.o"
  "CMakeFiles/viewmat_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/viewmat_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/viewmat_sim.dir/sim/simulator.cc.o.d"
  "libviewmat_sim.a"
  "libviewmat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
