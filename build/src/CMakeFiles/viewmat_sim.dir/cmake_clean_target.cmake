file(REMOVE_RECURSE
  "libviewmat_sim.a"
)
