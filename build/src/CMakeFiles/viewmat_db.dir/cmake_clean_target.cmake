file(REMOVE_RECURSE
  "libviewmat_db.a"
)
