
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/viewmat_db.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/predicate.cc" "src/CMakeFiles/viewmat_db.dir/db/predicate.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/predicate.cc.o.d"
  "/root/repo/src/db/relation.cc" "src/CMakeFiles/viewmat_db.dir/db/relation.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/relation.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/viewmat_db.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/schema.cc.o.d"
  "/root/repo/src/db/transaction.cc" "src/CMakeFiles/viewmat_db.dir/db/transaction.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/transaction.cc.o.d"
  "/root/repo/src/db/tuple.cc" "src/CMakeFiles/viewmat_db.dir/db/tuple.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/tuple.cc.o.d"
  "/root/repo/src/db/value.cc" "src/CMakeFiles/viewmat_db.dir/db/value.cc.o" "gcc" "src/CMakeFiles/viewmat_db.dir/db/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/viewmat_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
