# Empty dependencies file for viewmat_db.
# This may be replaced when dependencies are built.
