file(REMOVE_RECURSE
  "CMakeFiles/viewmat_db.dir/db/catalog.cc.o"
  "CMakeFiles/viewmat_db.dir/db/catalog.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/predicate.cc.o"
  "CMakeFiles/viewmat_db.dir/db/predicate.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/relation.cc.o"
  "CMakeFiles/viewmat_db.dir/db/relation.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/schema.cc.o"
  "CMakeFiles/viewmat_db.dir/db/schema.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/transaction.cc.o"
  "CMakeFiles/viewmat_db.dir/db/transaction.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/tuple.cc.o"
  "CMakeFiles/viewmat_db.dir/db/tuple.cc.o.d"
  "CMakeFiles/viewmat_db.dir/db/value.cc.o"
  "CMakeFiles/viewmat_db.dir/db/value.cc.o.d"
  "libviewmat_db.a"
  "libviewmat_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
