file(REMOVE_RECURSE
  "CMakeFiles/viewmat_storage.dir/storage/bloom_filter.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/bloom_filter.cc.o.d"
  "CMakeFiles/viewmat_storage.dir/storage/bptree.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/bptree.cc.o.d"
  "CMakeFiles/viewmat_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/viewmat_storage.dir/storage/disk.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/disk.cc.o.d"
  "CMakeFiles/viewmat_storage.dir/storage/hash_index.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/hash_index.cc.o.d"
  "CMakeFiles/viewmat_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/viewmat_storage.dir/storage/heap_file.cc.o.d"
  "libviewmat_storage.a"
  "libviewmat_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
