
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bloom_filter.cc" "src/CMakeFiles/viewmat_storage.dir/storage/bloom_filter.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/bloom_filter.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/viewmat_storage.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/viewmat_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/viewmat_storage.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/CMakeFiles/viewmat_storage.dir/storage/hash_index.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/hash_index.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/viewmat_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/viewmat_storage.dir/storage/heap_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
