# Empty dependencies file for viewmat_storage.
# This may be replaced when dependencies are built.
