file(REMOVE_RECURSE
  "libviewmat_storage.a"
)
