# Empty dependencies file for viewmat_view.
# This may be replaced when dependencies are built.
