file(REMOVE_RECURSE
  "libviewmat_view.a"
)
