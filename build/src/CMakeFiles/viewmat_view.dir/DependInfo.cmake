
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/advisor.cc" "src/CMakeFiles/viewmat_view.dir/view/advisor.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/advisor.cc.o.d"
  "/root/repo/src/view/aggregate.cc" "src/CMakeFiles/viewmat_view.dir/view/aggregate.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/aggregate.cc.o.d"
  "/root/repo/src/view/blakeley_appendix_a.cc" "src/CMakeFiles/viewmat_view.dir/view/blakeley_appendix_a.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/blakeley_appendix_a.cc.o.d"
  "/root/repo/src/view/deferred.cc" "src/CMakeFiles/viewmat_view.dir/view/deferred.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/deferred.cc.o.d"
  "/root/repo/src/view/group_aggregate.cc" "src/CMakeFiles/viewmat_view.dir/view/group_aggregate.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/group_aggregate.cc.o.d"
  "/root/repo/src/view/hybrid.cc" "src/CMakeFiles/viewmat_view.dir/view/hybrid.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/hybrid.cc.o.d"
  "/root/repo/src/view/immediate.cc" "src/CMakeFiles/viewmat_view.dir/view/immediate.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/immediate.cc.o.d"
  "/root/repo/src/view/materialized_view.cc" "src/CMakeFiles/viewmat_view.dir/view/materialized_view.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/materialized_view.cc.o.d"
  "/root/repo/src/view/query_modification.cc" "src/CMakeFiles/viewmat_view.dir/view/query_modification.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/query_modification.cc.o.d"
  "/root/repo/src/view/recompute_on_change.cc" "src/CMakeFiles/viewmat_view.dir/view/recompute_on_change.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/recompute_on_change.cc.o.d"
  "/root/repo/src/view/screening.cc" "src/CMakeFiles/viewmat_view.dir/view/screening.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/screening.cc.o.d"
  "/root/repo/src/view/screening_modes.cc" "src/CMakeFiles/viewmat_view.dir/view/screening_modes.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/screening_modes.cc.o.d"
  "/root/repo/src/view/snapshot.cc" "src/CMakeFiles/viewmat_view.dir/view/snapshot.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/snapshot.cc.o.d"
  "/root/repo/src/view/view_def.cc" "src/CMakeFiles/viewmat_view.dir/view/view_def.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/view_def.cc.o.d"
  "/root/repo/src/view/view_group.cc" "src/CMakeFiles/viewmat_view.dir/view/view_group.cc.o" "gcc" "src/CMakeFiles/viewmat_view.dir/view/view_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/viewmat_hr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
