file(REMOVE_RECURSE
  "CMakeFiles/viewmat_view.dir/view/advisor.cc.o"
  "CMakeFiles/viewmat_view.dir/view/advisor.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/aggregate.cc.o"
  "CMakeFiles/viewmat_view.dir/view/aggregate.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/blakeley_appendix_a.cc.o"
  "CMakeFiles/viewmat_view.dir/view/blakeley_appendix_a.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/deferred.cc.o"
  "CMakeFiles/viewmat_view.dir/view/deferred.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/group_aggregate.cc.o"
  "CMakeFiles/viewmat_view.dir/view/group_aggregate.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/hybrid.cc.o"
  "CMakeFiles/viewmat_view.dir/view/hybrid.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/immediate.cc.o"
  "CMakeFiles/viewmat_view.dir/view/immediate.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/materialized_view.cc.o"
  "CMakeFiles/viewmat_view.dir/view/materialized_view.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/query_modification.cc.o"
  "CMakeFiles/viewmat_view.dir/view/query_modification.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/recompute_on_change.cc.o"
  "CMakeFiles/viewmat_view.dir/view/recompute_on_change.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/screening.cc.o"
  "CMakeFiles/viewmat_view.dir/view/screening.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/screening_modes.cc.o"
  "CMakeFiles/viewmat_view.dir/view/screening_modes.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/snapshot.cc.o"
  "CMakeFiles/viewmat_view.dir/view/snapshot.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/view_def.cc.o"
  "CMakeFiles/viewmat_view.dir/view/view_def.cc.o.d"
  "CMakeFiles/viewmat_view.dir/view/view_group.cc.o"
  "CMakeFiles/viewmat_view.dir/view/view_group.cc.o.d"
  "libviewmat_view.a"
  "libviewmat_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmat_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
