# Empty compiler generated dependencies file for bench_fig5_model2_cost_vs_p.
# This may be replaced when dependencies are built.
