file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_hr.dir/bench_ablation_shared_hr.cc.o"
  "CMakeFiles/bench_ablation_shared_hr.dir/bench_ablation_shared_hr.cc.o.d"
  "bench_ablation_shared_hr"
  "bench_ablation_shared_hr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_hr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
