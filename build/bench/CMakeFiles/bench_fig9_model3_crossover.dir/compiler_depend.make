# Empty compiler generated dependencies file for bench_fig9_model3_crossover.
# This may be replaced when dependencies are built.
