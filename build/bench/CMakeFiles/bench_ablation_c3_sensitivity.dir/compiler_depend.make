# Empty compiler generated dependencies file for bench_ablation_c3_sensitivity.
# This may be replaced when dependencies are built.
