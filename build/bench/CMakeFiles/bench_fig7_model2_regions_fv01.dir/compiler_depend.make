# Empty compiler generated dependencies file for bench_fig7_model2_regions_fv01.
# This may be replaced when dependencies are built.
