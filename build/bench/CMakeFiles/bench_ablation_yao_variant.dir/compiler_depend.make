# Empty compiler generated dependencies file for bench_ablation_yao_variant.
# This may be replaced when dependencies are built.
