file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_yao_variant.dir/bench_ablation_yao_variant.cc.o"
  "CMakeFiles/bench_ablation_yao_variant.dir/bench_ablation_yao_variant.cc.o.d"
  "bench_ablation_yao_variant"
  "bench_ablation_yao_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_yao_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
