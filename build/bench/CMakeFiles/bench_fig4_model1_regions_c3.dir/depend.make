# Empty dependencies file for bench_fig4_model1_regions_c3.
# This may be replaced when dependencies are built.
