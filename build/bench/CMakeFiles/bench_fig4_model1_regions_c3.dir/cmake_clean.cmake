file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_model1_regions_c3.dir/bench_fig4_model1_regions_c3.cc.o"
  "CMakeFiles/bench_fig4_model1_regions_c3.dir/bench_fig4_model1_regions_c3.cc.o.d"
  "bench_fig4_model1_regions_c3"
  "bench_fig4_model1_regions_c3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_model1_regions_c3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
