# Empty compiler generated dependencies file for bench_fig8_model3_cost_vs_l.
# This may be replaced when dependencies are built.
