file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_separate_ad.dir/bench_ablation_separate_ad.cc.o"
  "CMakeFiles/bench_ablation_separate_ad.dir/bench_ablation_separate_ad.cc.o.d"
  "bench_ablation_separate_ad"
  "bench_ablation_separate_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_separate_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
