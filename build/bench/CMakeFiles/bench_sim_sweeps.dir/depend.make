# Empty dependencies file for bench_sim_sweeps.
# This may be replaced when dependencies are built.
