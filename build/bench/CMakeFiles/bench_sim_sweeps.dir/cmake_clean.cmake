file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_sweeps.dir/bench_sim_sweeps.cc.o"
  "CMakeFiles/bench_sim_sweeps.dir/bench_sim_sweeps.cc.o.d"
  "bench_sim_sweeps"
  "bench_sim_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
