# Empty dependencies file for bench_fig6_model2_regions.
# This may be replaced when dependencies are built.
