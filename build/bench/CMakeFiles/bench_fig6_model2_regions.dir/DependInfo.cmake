
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_model2_regions.cc" "bench/CMakeFiles/bench_fig6_model2_regions.dir/bench_fig6_model2_regions.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_model2_regions.dir/bench_fig6_model2_regions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/viewmat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_view.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_hr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/viewmat_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
