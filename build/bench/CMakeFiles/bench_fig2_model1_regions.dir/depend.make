# Empty dependencies file for bench_fig2_model1_regions.
# This may be replaced when dependencies are built.
