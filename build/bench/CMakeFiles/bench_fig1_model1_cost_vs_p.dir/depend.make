# Empty dependencies file for bench_fig1_model1_cost_vs_p.
# This may be replaced when dependencies are built.
