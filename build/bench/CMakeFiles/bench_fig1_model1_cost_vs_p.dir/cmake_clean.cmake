file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_model1_cost_vs_p.dir/bench_fig1_model1_cost_vs_p.cc.o"
  "CMakeFiles/bench_fig1_model1_cost_vs_p.dir/bench_fig1_model1_cost_vs_p.cc.o.d"
  "bench_fig1_model1_cost_vs_p"
  "bench_fig1_model1_cost_vs_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_model1_cost_vs_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
