file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snapshot.dir/bench_ablation_snapshot.cc.o"
  "CMakeFiles/bench_ablation_snapshot.dir/bench_ablation_snapshot.cc.o.d"
  "bench_ablation_snapshot"
  "bench_ablation_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
