file(REMOVE_RECURSE
  "CMakeFiles/bench_params_table.dir/bench_params_table.cc.o"
  "CMakeFiles/bench_params_table.dir/bench_params_table.cc.o.d"
  "bench_params_table"
  "bench_params_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_params_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
