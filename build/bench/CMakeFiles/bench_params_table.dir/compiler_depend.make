# Empty compiler generated dependencies file for bench_params_table.
# This may be replaced when dependencies are built.
