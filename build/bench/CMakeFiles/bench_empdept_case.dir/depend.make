# Empty dependencies file for bench_empdept_case.
# This may be replaced when dependencies are built.
