file(REMOVE_RECURSE
  "CMakeFiles/bench_empdept_case.dir/bench_empdept_case.cc.o"
  "CMakeFiles/bench_empdept_case.dir/bench_empdept_case.cc.o.d"
  "bench_empdept_case"
  "bench_empdept_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empdept_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
