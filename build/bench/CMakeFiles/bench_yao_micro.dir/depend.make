# Empty dependencies file for bench_yao_micro.
# This may be replaced when dependencies are built.
