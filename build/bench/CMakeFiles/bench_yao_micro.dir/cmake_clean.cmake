file(REMOVE_RECURSE
  "CMakeFiles/bench_yao_micro.dir/bench_yao_micro.cc.o"
  "CMakeFiles/bench_yao_micro.dir/bench_yao_micro.cc.o.d"
  "bench_yao_micro"
  "bench_yao_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yao_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
