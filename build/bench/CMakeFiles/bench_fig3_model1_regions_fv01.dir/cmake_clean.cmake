file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_model1_regions_fv01.dir/bench_fig3_model1_regions_fv01.cc.o"
  "CMakeFiles/bench_fig3_model1_regions_fv01.dir/bench_fig3_model1_regions_fv01.cc.o.d"
  "bench_fig3_model1_regions_fv01"
  "bench_fig3_model1_regions_fv01.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_model1_regions_fv01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
