# Empty dependencies file for bench_fig3_model1_regions_fv01.
# This may be replaced when dependencies are built.
