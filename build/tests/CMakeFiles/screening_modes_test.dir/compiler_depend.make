# Empty compiler generated dependencies file for screening_modes_test.
# This may be replaced when dependencies are built.
