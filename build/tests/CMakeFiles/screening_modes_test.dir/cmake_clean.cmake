file(REMOVE_RECURSE
  "CMakeFiles/screening_modes_test.dir/view/screening_modes_test.cc.o"
  "CMakeFiles/screening_modes_test.dir/view/screening_modes_test.cc.o.d"
  "screening_modes_test"
  "screening_modes_test.pdb"
  "screening_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screening_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
