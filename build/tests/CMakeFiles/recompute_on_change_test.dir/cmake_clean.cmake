file(REMOVE_RECURSE
  "CMakeFiles/recompute_on_change_test.dir/view/recompute_on_change_test.cc.o"
  "CMakeFiles/recompute_on_change_test.dir/view/recompute_on_change_test.cc.o.d"
  "recompute_on_change_test"
  "recompute_on_change_test.pdb"
  "recompute_on_change_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recompute_on_change_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
