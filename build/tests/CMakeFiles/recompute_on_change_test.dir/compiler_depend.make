# Empty compiler generated dependencies file for recompute_on_change_test.
# This may be replaced when dependencies are built.
