# Empty compiler generated dependencies file for view_group_test.
# This may be replaced when dependencies are built.
