# Empty compiler generated dependencies file for insert_delete_test.
# This may be replaced when dependencies are built.
