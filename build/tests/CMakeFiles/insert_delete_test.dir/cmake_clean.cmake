file(REMOVE_RECURSE
  "CMakeFiles/insert_delete_test.dir/view/insert_delete_test.cc.o"
  "CMakeFiles/insert_delete_test.dir/view/insert_delete_test.cc.o.d"
  "insert_delete_test"
  "insert_delete_test.pdb"
  "insert_delete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insert_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
