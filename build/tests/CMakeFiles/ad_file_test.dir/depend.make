# Empty dependencies file for ad_file_test.
# This may be replaced when dependencies are built.
