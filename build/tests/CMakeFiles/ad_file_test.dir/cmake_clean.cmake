file(REMOVE_RECURSE
  "CMakeFiles/ad_file_test.dir/hr/ad_file_test.cc.o"
  "CMakeFiles/ad_file_test.dir/hr/ad_file_test.cc.o.d"
  "ad_file_test"
  "ad_file_test.pdb"
  "ad_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
