file(REMOVE_RECURSE
  "CMakeFiles/materialized_view_test.dir/view/materialized_view_test.cc.o"
  "CMakeFiles/materialized_view_test.dir/view/materialized_view_test.cc.o.d"
  "materialized_view_test"
  "materialized_view_test.pdb"
  "materialized_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialized_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
