# Empty dependencies file for yao_test.
# This may be replaced when dependencies are built.
