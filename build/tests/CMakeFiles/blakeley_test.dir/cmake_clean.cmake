file(REMOVE_RECURSE
  "CMakeFiles/blakeley_test.dir/view/blakeley_test.cc.o"
  "CMakeFiles/blakeley_test.dir/view/blakeley_test.cc.o.d"
  "blakeley_test"
  "blakeley_test.pdb"
  "blakeley_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blakeley_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
