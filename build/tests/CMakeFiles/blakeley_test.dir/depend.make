# Empty dependencies file for blakeley_test.
# This may be replaced when dependencies are built.
