# Empty compiler generated dependencies file for model3_test.
# This may be replaced when dependencies are built.
