file(REMOVE_RECURSE
  "CMakeFiles/model3_test.dir/costmodel/model3_test.cc.o"
  "CMakeFiles/model3_test.dir/costmodel/model3_test.cc.o.d"
  "model3_test"
  "model3_test.pdb"
  "model3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
