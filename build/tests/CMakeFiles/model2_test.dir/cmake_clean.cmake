file(REMOVE_RECURSE
  "CMakeFiles/model2_test.dir/costmodel/model2_test.cc.o"
  "CMakeFiles/model2_test.dir/costmodel/model2_test.cc.o.d"
  "model2_test"
  "model2_test.pdb"
  "model2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
