# Empty compiler generated dependencies file for model2_test.
# This may be replaced when dependencies are built.
