# Empty compiler generated dependencies file for hypothetical_relation_test.
# This may be replaced when dependencies are built.
