# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hypothetical_relation_test.
