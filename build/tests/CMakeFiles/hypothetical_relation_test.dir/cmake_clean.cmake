file(REMOVE_RECURSE
  "CMakeFiles/hypothetical_relation_test.dir/hr/hypothetical_relation_test.cc.o"
  "CMakeFiles/hypothetical_relation_test.dir/hr/hypothetical_relation_test.cc.o.d"
  "hypothetical_relation_test"
  "hypothetical_relation_test.pdb"
  "hypothetical_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypothetical_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
