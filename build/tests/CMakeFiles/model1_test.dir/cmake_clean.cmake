file(REMOVE_RECURSE
  "CMakeFiles/model1_test.dir/costmodel/model1_test.cc.o"
  "CMakeFiles/model1_test.dir/costmodel/model1_test.cc.o.d"
  "model1_test"
  "model1_test.pdb"
  "model1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
