# Empty dependencies file for model1_test.
# This may be replaced when dependencies are built.
