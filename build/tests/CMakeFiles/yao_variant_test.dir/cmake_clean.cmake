file(REMOVE_RECURSE
  "CMakeFiles/yao_variant_test.dir/costmodel/yao_variant_test.cc.o"
  "CMakeFiles/yao_variant_test.dir/costmodel/yao_variant_test.cc.o.d"
  "yao_variant_test"
  "yao_variant_test.pdb"
  "yao_variant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yao_variant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
