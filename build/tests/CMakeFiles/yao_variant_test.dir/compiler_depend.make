# Empty compiler generated dependencies file for yao_variant_test.
# This may be replaced when dependencies are built.
