# Empty dependencies file for yao_empirical_test.
# This may be replaced when dependencies are built.
