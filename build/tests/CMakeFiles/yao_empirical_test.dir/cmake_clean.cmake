file(REMOVE_RECURSE
  "CMakeFiles/yao_empirical_test.dir/storage/yao_empirical_test.cc.o"
  "CMakeFiles/yao_empirical_test.dir/storage/yao_empirical_test.cc.o.d"
  "yao_empirical_test"
  "yao_empirical_test.pdb"
  "yao_empirical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yao_empirical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
