# Empty dependencies file for db_window.
# This may be replaced when dependencies are built.
