file(REMOVE_RECURSE
  "CMakeFiles/db_window.dir/db_window.cpp.o"
  "CMakeFiles/db_window.dir/db_window.cpp.o.d"
  "db_window"
  "db_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
