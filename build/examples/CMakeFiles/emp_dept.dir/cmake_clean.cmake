file(REMOVE_RECURSE
  "CMakeFiles/emp_dept.dir/emp_dept.cpp.o"
  "CMakeFiles/emp_dept.dir/emp_dept.cpp.o.d"
  "emp_dept"
  "emp_dept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emp_dept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
