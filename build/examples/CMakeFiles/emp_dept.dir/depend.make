# Empty dependencies file for emp_dept.
# This may be replaced when dependencies are built.
